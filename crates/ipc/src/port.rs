//! Ports: protected bounded message queues with capability-style rights.
//!
//! "A port is a communication channel. Logically, a port is a finite length
//! queue for messages protected by the kernel. A port may have any number
//! of senders but only one receiver."
//!
//! Rights are modeled directly in the type system:
//!
//! * [`SendRight`] is cloneable — any number of senders.
//! * [`ReceiveRight`] is not cloneable — exactly one receiver. Dropping it
//!   destroys the port; queued messages are discarded, blocked senders and
//!   receivers are woken with [`IpcError::PortDied`], and death
//!   notifications are posted to subscribed ports ("tasks holding send
//!   rights are notified").
//!
//! # Concurrency
//!
//! A port under heavy multi-core traffic must not serialize every sender
//! and the receiver behind one mutex, so the queue is *sharded*: each
//! sending thread hashes to one of [`SHARD_COUNT`] sub-queues and appends
//! under that shard's lock only; the receiver drains shards round-robin.
//! Messages from one sender always land in one shard in order, so
//! per-sender FIFO is preserved; no total order across senders is promised
//! (none ever was — concurrent senders race to the queue).
//!
//! Two lock classes from the declared hierarchy (see `machsim::lockdep`)
//! cover the port:
//!
//! * `port-control` (`PortCore::control`) — death state, death
//!   subscriptions, port-set wakers, the RPC handoff slot, and the mutex
//!   both condvars wait on. Blocking paths hold it; fast paths do not.
//! * `port-shard` (`PortShard::ring`) — one sub-queue. Innermost: may be
//!   taken while `control` is held (receiver re-scan, destroy drain),
//!   never the other way around.
//!
//! Counters (`depth`, `recv_waiters`, `send_waiters`) are SeqCst atomics
//! forming a Dekker-style protocol: a sender bumps `depth` *then* reads
//! `recv_waiters`; a receiver registers as a waiter *then* re-reads
//! `depth`. Sequential consistency guarantees at least one side observes
//! the other, so a wakeup is never lost even though the send fast path
//! takes no lock but its shard. Simulated cost accounting (`charge_send`)
//! runs outside every queue lock.

use crate::error::IpcError;
use crate::message::{Message, MsgItem, MSG_ID_PORT_DEATH};
use crate::protocol;
use crate::IpcContext;
use machsim::lockdep::{ClassMutex, ClassMutexGuard, LockClass};
use machsim::stats::keys;
use machsim::trace::{self, EventKind};
use machsim::wall::Deadline;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Default queue backlog, matching historical Mach's `PORT_BACKLOG_DEFAULT`.
pub const DEFAULT_BACKLOG: usize = 5;

/// Sub-queues per port. Senders hash to a shard by thread; the receiver
/// drains round-robin. Power of two so the hash is a mask.
pub const SHARD_COUNT: usize = 8;
const SHARD_MASK: usize = SHARD_COUNT - 1;

/// How long the receiver naps before rescanning when `depth` says a
/// message exists but no shard has it yet (a sender holds a reservation
/// it has not pushed). The window is the sender's push critical section,
/// so one nap almost always suffices.
const IN_FLIGHT_RESCAN: Duration = Duration::from_micros(100);

static NEXT_SENDER_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Small dense per-thread id assigned on first send: gives each
    /// sending thread a stable home shard without hashing `ThreadId`
    /// (whose integer form is not stable API).
    static SENDER_SLOT: usize = NEXT_SENDER_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's home shard index.
fn sender_shard() -> usize {
    SENDER_SLOT.with(|s| *s) & SHARD_MASK
}

/// Globally unique port identity (kernel-internal; tasks use local names).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u64);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port#{}", self.0)
    }
}

static NEXT_PORT_ID: AtomicU64 = AtomicU64::new(1);

/// Status information returned by `port_status` (Table 3-2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortStatus {
    /// Messages currently queued.
    pub num_msgs: usize,
    /// Maximum number of queued messages before senders block.
    pub backlog: usize,
    /// Whether a receive right still exists.
    pub has_receiver: bool,
    /// Number of live send rights.
    pub senders: usize,
}

/// Wakeup channel shared with port-set receivers (the default port group).
#[derive(Debug, Default)]
pub(crate) struct SetWaker {
    generation: Mutex<u64>,
    cv: Condvar,
}

impl SetWaker {
    /// Current generation; pass to [`SetWaker::wait`] to detect pings.
    pub(crate) fn generation(&self) -> u64 {
        *self.generation.lock()
    }

    /// Signals that some enabled port may have become readable.
    pub(crate) fn ping(&self) {
        let mut g = self.generation.lock();
        *g += 1;
        self.cv.notify_all();
    }

    /// Waits until the generation moves past `seen` or `timeout` expires.
    /// Returns `false` on timeout.
    ///
    /// The deadline is computed once up front: a spurious wakeup (or a
    /// ping for a port that turns out to be empty) resumes waiting for
    /// the *remainder*, never a fresh full timeout.
    pub(crate) fn wait(&self, seen: u64, timeout: Option<Duration>) -> bool {
        let deadline = timeout.map(Deadline::after);
        let mut g = self.generation.lock();
        while *g == seen {
            match &deadline {
                Some(d) => {
                    let Some(left) = d.remaining() else {
                        return *g != seen;
                    };
                    self.cv.wait_for(&mut g, left);
                }
                None => self.cv.wait(&mut g),
            }
        }
        true
    }
}

/// One sub-queue of a port's sharded message queue.
struct PortShard {
    ring: ClassMutex<VecDeque<Message>>,
}

impl PortShard {
    fn new() -> Self {
        PortShard {
            ring: ClassMutex::new(LockClass::PortShard, VecDeque::new()),
        }
    }
}

/// Slow-path state of one port, under the `port-control` lock.
struct Control {
    dead: bool,
    /// Ports to which a death notification should be posted on destruction.
    death_subs: Vec<Weak<PortCore>>,
    /// Port-set wakers to ping on message arrival. Behind an `Arc` so the
    /// notify path snapshots the list with a refcount bump, not a clone
    /// of the vector; dead weaks are pruned on every rebuild.
    wakers: Arc<Vec<Weak<SetWaker>>>,
    /// The RPC handoff slot: a message donated directly to a waiting
    /// receiver, bypassing the shards. Only filled while `depth` was
    /// zero, so it can never overtake queued messages.
    handoff: Option<Message>,
}

/// The kernel object behind both kinds of rights.
pub(crate) struct PortCore {
    id: PortId,
    ctx: IpcContext,
    shards: Box<[PortShard]>,
    /// Queued messages plus senders' transient backlog reservations plus
    /// an occupied handoff slot. The backlog gate and the receiver's
    /// "anything in flight?" check both read this.
    depth: AtomicUsize,
    backlog: AtomicUsize,
    control: ClassMutex<Control>,
    /// Mirror of `control.handoff.is_some()`, so pop paths skip the
    /// control lock when the slot is empty (the common case).
    handoff_set: AtomicBool,
    /// Whether senders may use the handoff fast path at all.
    handoff_enabled: AtomicBool,
    recv_cv: Condvar,
    send_cv: Condvar,
    /// Receivers blocked (or about to block) on `recv_cv`.
    recv_waiters: AtomicUsize,
    /// Senders blocked (or about to block) on `send_cv`.
    send_waiters: AtomicUsize,
    /// Live entries in `control.wakers`; lock-free skip for the common
    /// no-port-set case.
    waker_count: AtomicUsize,
    /// Next shard the receiver's round-robin scan starts from.
    cursor: AtomicUsize,
    senders: AtomicUsize,
    receiver_alive: AtomicUsize,
}

impl fmt::Debug for PortCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PortCore({})", self.id)
    }
}

impl PortCore {
    fn new(ctx: IpcContext) -> Arc<Self> {
        let shards: Vec<PortShard> = (0..SHARD_COUNT).map(|_| PortShard::new()).collect();
        Arc::new(PortCore {
            id: PortId(NEXT_PORT_ID.fetch_add(1, Ordering::Relaxed)),
            ctx,
            shards: shards.into_boxed_slice(),
            depth: AtomicUsize::new(0),
            backlog: AtomicUsize::new(DEFAULT_BACKLOG),
            control: ClassMutex::new(
                LockClass::PortControl,
                Control {
                    dead: false,
                    death_subs: Vec::new(),
                    wakers: Arc::new(Vec::new()),
                    handoff: None,
                },
            ),
            handoff_set: AtomicBool::new(false),
            handoff_enabled: AtomicBool::new(true),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
            recv_waiters: AtomicUsize::new(0),
            send_waiters: AtomicUsize::new(0),
            waker_count: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            senders: AtomicUsize::new(0),
            receiver_alive: AtomicUsize::new(1),
        })
    }

    // ----- cost accounting (always outside queue locks) -----

    /// Charges simulated cost of moving `msg`, bumps counters, and stamps
    /// the message's trace context (correlation id from the sending
    /// thread if unset, send timestamp from this machine's clock).
    fn charge_send(&self, msg: &mut Message) {
        let cost = &self.ctx.cost;
        let inline = msg.inline_len() as u64;
        let ool_pages = msg.ool_len().div_ceil(4096) as u64;
        self.ctx
            .clock
            .charge(cost.message_ns + cost.copy_cost_ns(inline) + cost.remap_cost_ns(ool_pages));
        self.ctx.hot.msg_sent.incr();
        self.ctx.hot.bytes_copied.add(inline);
        self.ctx.stats.add(keys::PAGES_REMAPPED, ool_pages);
        if msg.correlation == 0 {
            if let Some(cid) = trace::current_correlation() {
                msg.correlation = cid.raw();
            }
        }
        if msg.correlation != 0 {
            if msg.parent_span == 0 {
                msg.parent_span = trace::ambient_span_for(msg.correlation);
            }
            // The queue span covers the message's time between enqueue
            // and dequeue — the profiler's per-hop queueing delay.
            msg.queue_span = self.ctx.span_open_with(
                "ipc.queued",
                msg.parent_span,
                trace::CorrelationId::from_raw(msg.correlation),
            );
        }
        msg.sent_at_ns = self.ctx.clock.now_ns();
        self.ctx.trace_event_with(
            &self.id.to_string(),
            EventKind::MsgSend,
            trace::CorrelationId::from_raw(msg.correlation),
        );
    }

    /// Charges the reduced thread-handoff cost: the payload still moves
    /// (copy for inline, remap for out-of-line), but queue insertion and
    /// the scheduler wakeup are replaced by a direct donation to the
    /// waiting receiver.
    fn charge_handoff(&self, msg: &mut Message) {
        let cost = &self.ctx.cost;
        let inline = msg.inline_len() as u64;
        let ool_pages = msg.ool_len().div_ceil(4096) as u64;
        self.ctx
            .clock
            .charge(cost.handoff_ns + cost.copy_cost_ns(inline) + cost.remap_cost_ns(ool_pages));
        self.ctx.hot.msg_sent.incr();
        self.ctx.hot.ipc_handoffs.incr();
        self.ctx.hot.bytes_copied.add(inline);
        self.ctx.stats.add(keys::PAGES_REMAPPED, ool_pages);
        if msg.correlation == 0 {
            if let Some(cid) = trace::current_correlation() {
                msg.correlation = cid.raw();
            }
        }
        if msg.correlation != 0 {
            if msg.parent_span == 0 {
                msg.parent_span = trace::ambient_span_for(msg.correlation);
            }
            // A handoff never queues: emit a zero-duration span (queueing
            // delay really is zero) and re-parent the message under it so
            // the receiver's work shows up below the handoff in the tree.
            let cid = trace::CorrelationId::from_raw(msg.correlation);
            let hs = self.ctx.span_open_with("ipc.handoff", msg.parent_span, cid);
            self.ctx.span_close_with("ipc.handoff", hs, cid);
            msg.parent_span = hs;
        }
        msg.sent_at_ns = self.ctx.clock.now_ns();
        self.ctx.trace_event_with(
            &self.id.to_string(),
            EventKind::MsgSend,
            trace::CorrelationId::from_raw(msg.correlation),
        );
    }

    /// Batch variant of [`PortCore::charge_send`]: one clock charge, one
    /// counter add and one trace event amortized over the whole batch.
    fn charge_send_batch(&self, msgs: &mut [Message]) {
        if msgs.is_empty() {
            return;
        }
        let cost = &self.ctx.cost;
        let mut total_ns = 0u64;
        let mut bytes = 0u64;
        let mut pages = 0u64;
        for m in msgs.iter() {
            let inline = m.inline_len() as u64;
            let ool_pages = m.ool_len().div_ceil(4096) as u64;
            total_ns += cost.message_ns + cost.copy_cost_ns(inline) + cost.remap_cost_ns(ool_pages);
            bytes += inline;
            pages += ool_pages;
        }
        self.ctx.clock.charge(total_ns);
        self.ctx.hot.msg_sent.add(msgs.len() as u64);
        self.ctx.hot.bytes_copied.add(bytes);
        self.ctx.stats.add(keys::PAGES_REMAPPED, pages);
        if msgs.len() > 1 {
            self.ctx.hot.ipc_batches.incr();
        }
        let now = self.ctx.clock.now_ns();
        let ambient = trace::current_correlation();
        for m in msgs.iter_mut() {
            if m.correlation == 0 {
                if let Some(cid) = ambient {
                    m.correlation = cid.raw();
                }
            }
            // Batch sends stay cheap: stamp the parent for downstream
            // nesting but skip per-message queue spans.
            if m.parent_span == 0 {
                m.parent_span = trace::ambient_span_for(m.correlation);
            }
            m.sent_at_ns = now;
        }
        self.ctx.trace_event_with(
            &self.id.to_string(),
            EventKind::MsgSend,
            trace::CorrelationId::from_raw(msgs[0].correlation),
        );
    }

    /// Receive-side bookkeeping shared by all dequeue paths: counters,
    /// the send-to-receive latency sample, the `MsgRecv` trace event, and
    /// adoption of the message's correlation id by the receiving thread.
    fn finish_recv(&self, msg: &Message) {
        self.ctx.hot.msg_received.incr();
        let cid = trace::CorrelationId::from_raw(msg.correlation);
        if msg.sent_at_ns != 0 {
            let now = self.ctx.clock.now_ns();
            self.ctx.latency.record(
                trace::keys::SEND_TO_RECEIVE,
                now.saturating_sub(msg.sent_at_ns),
            );
        }
        if msg.queue_span != 0 {
            self.ctx.span_close_with("ipc.queued", msg.queue_span, cid);
        }
        self.ctx
            .trace_event_with(&self.id.to_string(), EventKind::MsgRecv, cid);
        trace::set_current_correlation(cid);
        trace::set_current_span(msg.span_context());
    }

    /// Batch variant of [`PortCore::finish_recv`]: per-message latency
    /// samples (they are the data the histograms exist for) but a single
    /// counter add and a single trace event for the whole batch.
    fn finish_recv_batch(&self, msgs: &[Message]) {
        let Some(last) = msgs.last() else { return };
        self.ctx.hot.msg_received.add(msgs.len() as u64);
        if msgs.len() > 1 {
            self.ctx.hot.ipc_batches.incr();
        }
        let now = self.ctx.clock.now_ns();
        for m in msgs {
            if m.sent_at_ns != 0 {
                self.ctx.latency.record(
                    trace::keys::SEND_TO_RECEIVE,
                    now.saturating_sub(m.sent_at_ns),
                );
            }
            if m.queue_span != 0 {
                self.ctx.span_close_with(
                    "ipc.queued",
                    m.queue_span,
                    trace::CorrelationId::from_raw(m.correlation),
                );
            }
        }
        let cid = trace::CorrelationId::from_raw(last.correlation);
        self.ctx
            .trace_event_with(&self.id.to_string(), EventKind::MsgRecv, cid);
        trace::set_current_correlation(cid);
        trace::set_current_span(last.span_context());
    }

    // ----- wakeup plumbing -----

    /// Wakes one blocked receiver, if any. The empty `control` critical
    /// section is the classic bridge: it serializes with a receiver that
    /// is between its last queue scan and its condvar enqueue, so the
    /// notify cannot slip into that window and be lost.
    fn notify_recv(&self) {
        if protocol::must_wake(self.recv_waiters.load(Ordering::SeqCst)) {
            drop(self.control.lock());
            self.recv_cv.notify_one();
        }
    }

    /// Wakes one blocked sender, if any (one queue slot freed).
    fn notify_send(&self) {
        if protocol::must_wake(self.send_waiters.load(Ordering::SeqCst)) {
            drop(self.control.lock());
            self.send_cv.notify_one();
        }
    }

    /// Wakes every blocked sender (several queue slots freed at once).
    fn notify_send_all(&self) {
        if protocol::must_wake(self.send_waiters.load(Ordering::SeqCst)) {
            drop(self.control.lock());
            self.send_cv.notify_all();
        }
    }

    /// Pings registered port-set wakers. Snapshots the list by bumping
    /// the `Arc` refcount (no per-send `Vec` clone) and prunes dead weak
    /// entries whenever an upgrade fails, so a port outliving its port
    /// sets keeps a bounded list.
    fn notify_wakers(&self) {
        if self.waker_count.load(Ordering::SeqCst) == 0 {
            return;
        }
        let list = {
            let ctrl = self.control.lock();
            Arc::clone(&ctrl.wakers)
        };
        let mut saw_dead = false;
        for w in list.iter() {
            match w.upgrade() {
                Some(w) => w.ping(),
                None => saw_dead = true,
            }
        }
        if saw_dead {
            let mut ctrl = self.control.lock();
            let pruned: Vec<Weak<SetWaker>> = ctrl
                .wakers
                .iter()
                .filter(|w| w.strong_count() > 0)
                .cloned()
                .collect();
            self.waker_count.store(pruned.len(), Ordering::SeqCst);
            ctrl.wakers = Arc::new(pruned);
        }
    }

    // ----- send path -----

    /// Reserves up to `want` queue slots against the backlog. Returns the
    /// number granted (possibly zero). Each granted slot is owned by the
    /// caller until it either pushes a message or undoes the reservation.
    fn reserve(&self, want: usize) -> usize {
        let cap = self.backlog.load(Ordering::SeqCst);
        let prev = self.depth.fetch_add(want, Ordering::SeqCst);
        if prev >= cap {
            self.depth.fetch_sub(want, Ordering::SeqCst);
            return 0;
        }
        let granted = want.min(cap - prev);
        if granted < want {
            self.depth.fetch_sub(want - granted, Ordering::SeqCst);
        }
        granted
    }

    /// Blocks until a queue slot looks free, the port dies, or the
    /// deadline passes (`None` deadline = wait forever). `Ok(())` means
    /// "retry the reservation", not "a slot is guaranteed".
    fn block_until_room(&self, deadline: Option<&Deadline>) -> Result<(), IpcError> {
        let mut ctrl = self.control.lock();
        loop {
            if ctrl.dead {
                return Err(IpcError::PortDied);
            }
            if protocol::room_available(
                self.depth.load(Ordering::SeqCst),
                self.backlog.load(Ordering::SeqCst),
            ) {
                return Ok(());
            }
            self.send_waiters.fetch_add(1, Ordering::SeqCst);
            // Dekker re-check: the receiver decrements `depth` *before*
            // reading `send_waiters`; we increment `send_waiters` before
            // re-reading `depth`. One side must see the other, so a pop
            // concurrent with this registration cannot strand us.
            if protocol::room_available(
                self.depth.load(Ordering::SeqCst),
                self.backlog.load(Ordering::SeqCst),
            ) {
                self.send_waiters.fetch_sub(1, Ordering::SeqCst);
                return Ok(());
            }
            let timed_out = match deadline {
                None => {
                    self.send_cv.wait(ctrl.inner_mut());
                    false
                }
                Some(d) => match d.remaining() {
                    None => true,
                    Some(left) => self.send_cv.wait_for(ctrl.inner_mut(), left).timed_out(),
                },
            };
            self.send_waiters.fetch_sub(1, Ordering::SeqCst);
            if timed_out {
                // The deadline passed while we slept, but a death wakeup
                // may have raced the timeout: prefer the death error (the
                // port is gone for good, a retry can never succeed), then
                // room discovered late, then the timeout.
                if ctrl.dead {
                    return Err(IpcError::PortDied);
                }
                if protocol::room_available(
                    self.depth.load(Ordering::SeqCst),
                    self.backlog.load(Ordering::SeqCst),
                ) {
                    return Ok(());
                }
                return Err(IpcError::Timeout);
            }
        }
    }

    /// Appends one reserved message to the calling thread's home shard.
    /// Gives the message back if the port died first (the reservation is
    /// undone; the caller surfaces `PortDied` and drops the message).
    fn push(&self, msg: Message) -> Result<(), Message> {
        let shard = &self.shards[sender_shard()];
        let mut ring = shard.ring.lock();
        // Checked *inside* the shard critical section: destroy marks the
        // port dead before draining each shard, so either we observe the
        // death here, or destroy's drain (which locks this shard after
        // us) collects our message. Nothing can be stranded.
        if self.receiver_alive.load(Ordering::SeqCst) == 0 {
            drop(ring);
            self.depth.fetch_sub(1, Ordering::SeqCst);
            return Err(msg);
        }
        ring.push_back(msg);
        Ok(())
    }

    /// Appends a whole reserved batch under one shard lock acquisition.
    fn push_batch(&self, batch: Vec<Message>) -> Result<(), IpcError> {
        let n = batch.len();
        let shard = &self.shards[sender_shard()];
        let mut ring = shard.ring.lock();
        if self.receiver_alive.load(Ordering::SeqCst) == 0 {
            drop(ring);
            self.depth.fetch_sub(n, Ordering::SeqCst);
            // `batch` drops here, outside the shard lock; dropping
            // undelivered messages may recursively destroy carried ports.
            return Err(IpcError::PortDied);
        }
        ring.extend(batch);
        Ok(())
    }

    /// The handoff fast path: donate `msg` directly to a receiver that is
    /// already committed to waiting, skipping queue insertion and paying
    /// the cheaper `handoff_ns` cost. Only legal while the queue is
    /// completely empty (`depth == 0`), which preserves FIFO: nothing can
    /// be overtaken. Gives the message back if conditions do not hold.
    fn try_handoff(&self, msg: Message) -> Result<(), Message> {
        if !self.handoff_enabled.load(Ordering::Relaxed)
            || !protocol::handoff_admissible(
                true,
                self.recv_waiters.load(Ordering::SeqCst),
                self.depth.load(Ordering::SeqCst),
                self.handoff_set.load(Ordering::Acquire),
            )
        {
            return Err(msg);
        }
        let mut msg = msg;
        {
            let mut ctrl = self.control.lock();
            if ctrl.dead
                || !protocol::handoff_admissible(
                    true,
                    self.recv_waiters.load(Ordering::SeqCst),
                    self.depth.load(Ordering::SeqCst),
                    ctrl.handoff.is_some(),
                )
            {
                return Err(msg);
            }
            self.depth.fetch_add(1, Ordering::SeqCst);
            self.charge_handoff(&mut msg);
            ctrl.handoff = Some(msg);
            self.handoff_set.store(true, Ordering::SeqCst);
        }
        self.recv_cv.notify_one();
        self.notify_wakers();
        Ok(())
    }

    fn enqueue(&self, mut msg: Message, timeout: Option<Duration>) -> Result<(), IpcError> {
        // Advisory early-out; the authoritative death check is inside
        // the shard critical section (`push`), so Acquire suffices here.
        if self.receiver_alive.load(Ordering::Acquire) == 0 {
            return Err(IpcError::PortDied);
        }
        match self.try_handoff(msg) {
            Ok(()) => return Ok(()),
            Err(back) => msg = back,
        }
        if self.reserve(1) == 0 {
            if matches!(timeout, Some(t) if t.is_zero()) {
                return Err(IpcError::WouldBlock);
            }
            // The deadline is computed once, here; every wakeup below
            // waits only for the remainder. (Computed lazily so the
            // uncontended fast path never reads the wall clock.)
            let deadline = timeout.map(Deadline::after);
            loop {
                self.block_until_room(deadline.as_ref())?;
                if self.reserve(1) > 0 {
                    break;
                }
            }
        }
        self.charge_send(&mut msg);
        if self.push(msg).is_err() {
            return Err(IpcError::PortDied);
        }
        self.notify_recv();
        self.notify_wakers();
        Ok(())
    }

    /// Batched send: reserves as many backlog slots as fit, pushes that
    /// many messages under a single shard lock acquisition with a single
    /// amortized charge, and repeats until everything is sent or the
    /// port dies / the deadline passes. Returns the number delivered;
    /// timeout with partial progress reports the partial count rather
    /// than an error.
    fn enqueue_many(
        &self,
        msgs: Vec<Message>,
        timeout: Option<Duration>,
    ) -> Result<usize, IpcError> {
        if msgs.is_empty() {
            return Ok(0);
        }
        // Advisory early-out; `push_batch` re-checks under the shard lock.
        if self.receiver_alive.load(Ordering::Acquire) == 0 {
            return Err(IpcError::PortDied);
        }
        let deadline = match timeout {
            Some(t) if !t.is_zero() => Some(Deadline::after(t)),
            _ => None,
        };
        let total = msgs.len();
        let mut sent = 0usize;
        let mut iter = msgs.into_iter();
        while sent < total {
            let granted = loop {
                let g = self.reserve(total - sent);
                if g > 0 {
                    break g;
                }
                if matches!(timeout, Some(t) if t.is_zero()) {
                    return if sent > 0 {
                        Ok(sent)
                    } else {
                        Err(IpcError::WouldBlock)
                    };
                }
                match self.block_until_room(deadline.as_ref()) {
                    Ok(()) => {}
                    Err(IpcError::Timeout) if sent > 0 => return Ok(sent),
                    Err(e) => return Err(e),
                }
            };
            let mut batch: Vec<Message> = iter.by_ref().take(granted).collect();
            self.charge_send_batch(&mut batch);
            self.push_batch(batch)?;
            sent += granted;
            self.notify_recv();
            self.notify_wakers();
        }
        Ok(sent)
    }

    /// Batch variant of [`PortCore::enqueue_notification`]: a whole run
    /// of kernel notifications pushed under one shard lock acquisition
    /// with one amortized charge, still exempt from the backlog limit.
    /// The async fault engine's deep pager batching sends coalesced
    /// `pager_data_request` runs through here.
    fn enqueue_many_notification(&self, mut msgs: Vec<Message>) {
        // Advisory early-out; `push_batch` re-checks under the shard lock.
        if msgs.is_empty() || self.receiver_alive.load(Ordering::Acquire) == 0 {
            return;
        }
        self.depth.fetch_add(msgs.len(), Ordering::SeqCst);
        self.charge_send_batch(&mut msgs);
        if self.push_batch(msgs).is_err() {
            return; // Died underneath us; notifications to the dead drop.
        }
        self.notify_recv();
        self.notify_wakers();
    }

    /// Enqueues a kernel notification, ignoring the backlog limit so the
    /// kernel never blocks on a user queue.
    fn enqueue_notification(&self, mut msg: Message) {
        // Advisory early-out; `push` re-checks under the shard lock.
        if self.receiver_alive.load(Ordering::Acquire) == 0 {
            return;
        }
        self.depth.fetch_add(1, Ordering::SeqCst);
        self.charge_send(&mut msg);
        if self.push(msg).is_err() {
            return; // Died underneath us; notifications to the dead drop.
        }
        self.notify_recv();
        self.notify_wakers();
    }

    // ----- receive path -----

    /// Takes the handoff slot if occupied (and within `max_size`).
    fn take_handoff(
        &self,
        ctrl: &mut ClassMutexGuard<'_, Control>,
        max_size: Option<usize>,
    ) -> Result<Option<Message>, IpcError> {
        let Some(m) = ctrl.handoff.as_ref() else {
            return Ok(None);
        };
        if let Some(limit) = max_size {
            if m.inline_len() + m.ool_len() > limit {
                return Err(IpcError::MsgTooLarge);
            }
        }
        let taken = ctrl.handoff.take();
        self.handoff_set.store(false, Ordering::SeqCst);
        self.depth.fetch_sub(1, Ordering::SeqCst);
        Ok(taken)
    }

    /// Pops the front of the first non-empty shard, scanning round-robin
    /// from the cursor. An oversized front (under `max_size`) stays
    /// queued and reports `MsgTooLarge`, as `msg_receive` specifies.
    fn pop_shards(&self, max_size: Option<usize>) -> Result<Option<Message>, IpcError> {
        let start = self.cursor.load(Ordering::Relaxed);
        for i in 0..SHARD_COUNT {
            let idx = (start + i) & SHARD_MASK;
            let mut ring = self.shards[idx].ring.lock();
            let Some(front) = ring.front() else { continue };
            if let Some(limit) = max_size {
                if front.inline_len() + front.ool_len() > limit {
                    return Err(IpcError::MsgTooLarge);
                }
            }
            let Some(msg) = ring.pop_front() else {
                continue;
            };
            drop(ring);
            self.cursor.store((idx + 1) & SHARD_MASK, Ordering::Relaxed);
            self.depth.fetch_sub(1, Ordering::SeqCst);
            return Ok(Some(msg));
        }
        Ok(None)
    }

    /// Non-blocking pop: handoff slot first (it is always the oldest
    /// in-flight message when occupied), then the shards. Decrements
    /// `depth` for a popped message; the caller wakes senders and runs
    /// receive bookkeeping.
    fn try_pop(&self, max_size: Option<usize>) -> Result<Option<Message>, IpcError> {
        // Acquire suffices: the flag is a fast-path hint; the message
        // itself is published by the control lock taken right below, and
        // a stale `false` only defers the slot to the next scan.
        if self.handoff_set.load(Ordering::Acquire) {
            let mut ctrl = self.control.lock();
            let taken = self.take_handoff(&mut ctrl, max_size)?;
            drop(ctrl);
            if taken.is_some() {
                return Ok(taken);
            }
        }
        self.pop_shards(max_size)
    }

    /// Pop while already holding the control lock (blocking receive loop).
    fn pop_ctl(
        &self,
        ctrl: &mut ClassMutexGuard<'_, Control>,
        max_size: Option<usize>,
    ) -> Result<Option<Message>, IpcError> {
        if let Some(m) = self.take_handoff(ctrl, max_size)? {
            return Ok(Some(m));
        }
        self.pop_shards(max_size)
    }

    /// Dequeues one message without receive bookkeeping (callers batch
    /// or wrap it). The single timed-wait loop serving `receive`,
    /// `receive_limited` and `receive_many`'s first message:
    ///
    /// * the deadline is computed once; wakeups wait for the remainder;
    /// * on expiry the order of preference is message (it raced in),
    ///   then `PortDied`, then `Timeout`.
    fn dequeue_raw(
        &self,
        max_size: Option<usize>,
        timeout: Option<Duration>,
    ) -> Result<Message, IpcError> {
        if let Some(m) = self.try_pop(max_size)? {
            self.notify_send();
            return Ok(m);
        }
        if let Some(t) = timeout {
            if t.is_zero() {
                // Only picks which error to report; Acquire suffices.
                return Err(if self.receiver_alive.load(Ordering::Acquire) == 0 {
                    IpcError::PortDied
                } else {
                    IpcError::WouldBlock
                });
            }
        }
        let deadline = timeout.map(Deadline::after);
        let mut ctrl = self.control.lock();
        loop {
            if let Some(m) = self.pop_ctl(&mut ctrl, max_size)? {
                drop(ctrl);
                self.notify_send();
                return Ok(m);
            }
            if ctrl.dead {
                return Err(IpcError::PortDied);
            }
            self.recv_waiters.fetch_add(1, Ordering::SeqCst);
            // Dekker re-check against the lock-free send path: a sender
            // bumps `depth` before reading `recv_waiters`; we registered
            // before reading `depth`. If a sender slipped past our scan,
            // one of us is guaranteed to see the other.
            let in_flight = protocol::receiver_saw_in_flight(self.depth.load(Ordering::SeqCst));
            let timed_out = if in_flight {
                // Something is reserved or queued but our scan missed it
                // (the sender may not have pushed yet, and may already
                // have skipped its notify). Nap briefly and rescan rather
                // than committing to a wait nobody will cut short.
                match &deadline {
                    Some(d) if d.remaining().is_none() => true,
                    _ => {
                        self.recv_cv.wait_for(ctrl.inner_mut(), IN_FLIGHT_RESCAN);
                        false
                    }
                }
            } else {
                match &deadline {
                    None => {
                        self.recv_cv.wait(ctrl.inner_mut());
                        false
                    }
                    Some(d) => match d.remaining() {
                        None => true,
                        Some(left) => self.recv_cv.wait_for(ctrl.inner_mut(), left).timed_out(),
                    },
                }
            };
            self.recv_waiters.fetch_sub(1, Ordering::SeqCst);
            if timed_out {
                if let Some(m) = self.pop_ctl(&mut ctrl, max_size)? {
                    drop(ctrl);
                    self.notify_send();
                    return Ok(m);
                }
                if ctrl.dead {
                    return Err(IpcError::PortDied);
                }
                return Err(IpcError::Timeout);
            }
        }
    }

    fn dequeue(&self, timeout: Option<Duration>) -> Result<Message, IpcError> {
        let m = self.dequeue_raw(None, timeout)?;
        self.finish_recv(&m);
        Ok(m)
    }

    /// Dequeues only if the next message's payload fits `max_size` bytes;
    /// an oversized message is left queued and reported as too large.
    fn dequeue_limited(
        &self,
        max_size: usize,
        timeout: Option<Duration>,
    ) -> Result<Message, IpcError> {
        let m = self.dequeue_raw(Some(max_size), timeout)?;
        self.finish_recv(&m);
        Ok(m)
    }

    /// Batched receive: blocks for the first message like `dequeue`, then
    /// greedily drains up to `max` more without blocking, with one
    /// amortized receive charge for the whole batch.
    fn dequeue_many(
        &self,
        max: usize,
        timeout: Option<Duration>,
    ) -> Result<Vec<Message>, IpcError> {
        if max == 0 {
            return Ok(Vec::new());
        }
        let first = self.dequeue_raw(None, timeout)?;
        let mut out = Vec::with_capacity(max.min(32));
        out.push(first);
        while out.len() < max {
            match self.try_pop(None) {
                Ok(Some(m)) => out.push(m),
                _ => break,
            }
        }
        self.notify_send_all();
        self.finish_recv_batch(&out);
        Ok(out)
    }

    fn try_dequeue(&self) -> Option<Message> {
        match self.try_pop(None) {
            Ok(Some(m)) => {
                self.notify_send();
                self.finish_recv(&m);
                Some(m)
            }
            _ => None,
        }
    }

    // ----- lifecycle -----

    fn destroy(&self) {
        let (subs, dropped) = {
            let mut ctrl = self.control.lock();
            if ctrl.dead {
                return;
            }
            ctrl.dead = true;
            // Lock-free paths key off this store. It happens before the
            // drain below, so a sender still inside its shard critical
            // section either observes the death and backs out, or its
            // message is collected by the drain (mutex ordering) — never
            // stranded in a dead port's queue.
            self.receiver_alive.store(0, Ordering::SeqCst);
            let subs = std::mem::take(&mut ctrl.death_subs);
            let mut dropped: Vec<Message> = Vec::new();
            if let Some(m) = ctrl.handoff.take() {
                self.handoff_set.store(false, Ordering::SeqCst);
                dropped.push(m);
            }
            for sh in self.shards.iter() {
                let mut ring = sh.ring.lock();
                dropped.append(&mut ring.drain(..).collect());
            }
            self.depth.fetch_sub(dropped.len(), Ordering::SeqCst);
            (subs, dropped)
        };
        self.recv_cv.notify_all();
        self.send_cv.notify_all();
        // Dropping undelivered messages may destroy rights they carried,
        // which can recursively destroy other ports; do it outside the lock.
        drop(dropped);
        for sub in subs {
            if let Some(target) = sub.upgrade() {
                target.enqueue_notification(
                    Message::new(MSG_ID_PORT_DEATH).with(MsgItem::u64s(&[self.id.0])),
                );
            }
        }
    }

    fn status(&self) -> PortStatus {
        // Diagnostic snapshot: none of these loads order anything, so
        // Relaxed is enough (the Dekker sites keep their own SeqCst).
        PortStatus {
            num_msgs: self.depth.load(Ordering::Relaxed),
            backlog: self.backlog.load(Ordering::Relaxed),
            has_receiver: self.receiver_alive.load(Ordering::Relaxed) == 1,
            senders: self.senders.load(Ordering::Relaxed),
        }
    }
}

/// A send capability for a port. Cloneable: any number of senders.
pub struct SendRight {
    core: Arc<PortCore>,
}

impl Clone for SendRight {
    fn clone(&self) -> Self {
        self.core.senders.fetch_add(1, Ordering::Relaxed);
        SendRight {
            core: self.core.clone(),
        }
    }
}

impl Drop for SendRight {
    fn drop(&mut self) {
        self.core.senders.fetch_sub(1, Ordering::Relaxed);
    }
}

impl fmt::Debug for SendRight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendRight({})", self.core.id)
    }
}

impl SendRight {
    /// The identity of the port this right names.
    pub fn id(&self) -> PortId {
        self.core.id
    }

    /// Number of messages currently queued on the target port — the
    /// sender-side view of queue depth, for backlog gauges.
    pub fn queued(&self) -> usize {
        // Gauge read; orders nothing.
        self.core.depth.load(Ordering::Relaxed)
    }

    /// `msg_send`: queues a message, blocking while the queue is full.
    ///
    /// `timeout = None` waits indefinitely; `Some(0)` never blocks
    /// (returning [`IpcError::WouldBlock`] when full). When a receiver is
    /// already committed to waiting and the queue is empty, the message
    /// is donated directly (the handoff fast path) at reduced simulated
    /// cost.
    pub fn send(&self, msg: Message, timeout: Option<Duration>) -> Result<(), IpcError> {
        self.core.enqueue(msg, timeout)
    }

    /// Batched `msg_send`: delivers `msgs` in order (they share this
    /// thread's queue shard), amortizing one lock acquisition and one
    /// cost charge over each backlog-sized run. Returns how many were
    /// delivered: all of them, barring port death (`Err(PortDied)`
    /// with none-or-some delivered) or a timeout (`Err(Timeout)` if
    /// nothing was sent, `Ok(n < msgs.len())` after partial progress).
    pub fn send_many(
        &self,
        msgs: Vec<Message>,
        timeout: Option<Duration>,
    ) -> Result<usize, IpcError> {
        self.core.enqueue_many(msgs, timeout)
    }

    /// Sends a kernel-generated notification, exempt from the backlog.
    ///
    /// Used by kernel components (pager interface, port death) that must
    /// not block on user queues; see Section 6.2.3 on why the kernel can
    /// never afford to wait on a data manager.
    pub fn send_notification(&self, msg: Message) {
        self.core.enqueue_notification(msg)
    }

    /// Batched [`SendRight::send_notification`]: every message in `msgs`
    /// is delivered in order under one lock acquisition and one
    /// amortized charge, exempt from the backlog. Used by kernel
    /// components that ship coalesced runs (the async fault engine's
    /// batched `pager_data_request`s above all).
    pub fn send_many_notification(&self, msgs: Vec<Message>) {
        self.core.enqueue_many_notification(msgs)
    }

    /// `msg_rpc`: sends `msg` with a freshly allocated reply port, then
    /// awaits the reply on it.
    ///
    /// Both hops ride the handoff fast path when the peer is already
    /// waiting: the request is donated to a blocked server, and the reply
    /// is donated back to this (by then blocked) client — the thread
    ///-donation RPC shape, without a queue transit in either direction.
    pub fn rpc(
        &self,
        msg: Message,
        send_timeout: Option<Duration>,
        rcv_timeout: Option<Duration>,
    ) -> Result<Message, IpcError> {
        self.rpc_limited(msg, usize::MAX, send_timeout, rcv_timeout)
    }

    /// `msg_rpc` with the Table 3-1 `rcv_size` argument: a reply larger
    /// than `rcv_size` payload bytes fails with [`IpcError::MsgTooLarge`].
    pub fn rpc_limited(
        &self,
        mut msg: Message,
        rcv_size: usize,
        send_timeout: Option<Duration>,
        rcv_timeout: Option<Duration>,
    ) -> Result<Message, IpcError> {
        let (reply_rx, reply_tx) = ReceiveRight::allocate(&self.core.ctx);
        msg.reply = Some(reply_tx);
        self.send(msg, send_timeout)?;
        reply_rx.receive_limited(rcv_size, rcv_timeout)
    }

    /// Whether the port still has a receiver.
    pub fn is_alive(&self) -> bool {
        self.core.receiver_alive.load(Ordering::Acquire) == 1
    }

    /// Registers `notify` to receive a [`MSG_ID_PORT_DEATH`] message when
    /// this port's receive right is destroyed.
    pub fn subscribe_death(&self, notify: &SendRight) {
        let mut ctrl = self.core.control.lock();
        if ctrl.dead {
            drop(ctrl);
            notify.send_notification(
                Message::new(MSG_ID_PORT_DEATH).with(MsgItem::u64s(&[self.core.id.0])),
            );
            return;
        }
        ctrl.death_subs.push(Arc::downgrade(&notify.core));
    }

    /// `port_status` fields for this port.
    pub fn status(&self) -> PortStatus {
        self.core.status()
    }

    /// Whether two rights name the same port.
    pub fn same_port(&self, other: &SendRight) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }
}

/// The unique receive capability for a port.
///
/// Not cloneable; dropping it destroys the port.
pub struct ReceiveRight {
    core: Arc<PortCore>,
}

impl fmt::Debug for ReceiveRight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReceiveRight({})", self.core.id)
    }
}

impl Drop for ReceiveRight {
    fn drop(&mut self) {
        self.core.destroy();
    }
}

impl ReceiveRight {
    /// Allocates a new port, returning its receive right and a send right.
    pub fn allocate(ctx: &IpcContext) -> (ReceiveRight, SendRight) {
        let core = PortCore::new(ctx.clone());
        core.senders.fetch_add(1, Ordering::Relaxed);
        (ReceiveRight { core: core.clone() }, SendRight { core })
    }

    /// The identity of the port.
    pub fn id(&self) -> PortId {
        self.core.id
    }

    /// Mints an additional send right for this port.
    pub fn make_send(&self) -> SendRight {
        self.core.senders.fetch_add(1, Ordering::Relaxed);
        SendRight {
            core: self.core.clone(),
        }
    }

    /// `msg_receive`: dequeues the next message, blocking while empty.
    pub fn receive(&self, timeout: Option<Duration>) -> Result<Message, IpcError> {
        self.core.dequeue(timeout)
    }

    /// `msg_receive` with a maximum acceptable payload size: an oversized
    /// message stays queued and [`IpcError::MsgTooLarge`] is returned.
    pub fn receive_limited(
        &self,
        max_size: usize,
        timeout: Option<Duration>,
    ) -> Result<Message, IpcError> {
        self.core.dequeue_limited(max_size, timeout)
    }

    /// Batched `msg_receive`: blocks (up to `timeout`) for the first
    /// message, then drains up to `max - 1` more that are already
    /// queued, amortizing the receive bookkeeping over the batch.
    /// Returns at least one message on success.
    pub fn receive_many(
        &self,
        max: usize,
        timeout: Option<Duration>,
    ) -> Result<Vec<Message>, IpcError> {
        self.core.dequeue_many(max, timeout)
    }

    /// Non-blocking receive.
    pub fn try_receive(&self) -> Option<Message> {
        self.core.try_dequeue()
    }

    /// `port_set_backlog`: limits queued messages before senders block.
    pub fn set_backlog(&self, backlog: usize) {
        self.core.backlog.store(backlog.max(1), Ordering::SeqCst);
        // A larger backlog may unblock senders; the empty critical
        // section pairs with their registration (see `notify_send`).
        drop(self.core.control.lock());
        self.core.send_cv.notify_all();
    }

    /// Enables or disables the sender→receiver handoff fast path
    /// (enabled by default; benchmarks toggle it to measure the gain).
    pub fn set_handoff(&self, enabled: bool) {
        self.core.handoff_enabled.store(enabled, Ordering::Relaxed);
    }

    /// `port_status` fields for this port.
    pub fn status(&self) -> PortStatus {
        self.core.status()
    }

    /// Number of queued messages.
    pub fn queued(&self) -> usize {
        // Gauge read; orders nothing.
        self.core.depth.load(Ordering::Relaxed)
    }

    /// Registers a port-set waker pinged on message arrival. Dead weak
    /// entries are pruned on every rebuild, so the list stays bounded by
    /// the number of *live* port sets no matter how many have died.
    pub(crate) fn register_waker(&self, waker: &Arc<SetWaker>) {
        let mut ctrl = self.core.control.lock();
        let mut v: Vec<Weak<SetWaker>> = ctrl
            .wakers
            .iter()
            .filter(|w| w.strong_count() > 0)
            .cloned()
            .collect();
        v.push(Arc::downgrade(waker));
        self.core.waker_count.store(v.len(), Ordering::SeqCst);
        ctrl.wakers = Arc::new(v);
    }

    /// Removes a previously registered waker (and any dead entries).
    pub(crate) fn unregister_waker(&self, waker: &Arc<SetWaker>) {
        let target = Arc::downgrade(waker);
        let mut ctrl = self.core.control.lock();
        let v: Vec<Weak<SetWaker>> = ctrl
            .wakers
            .iter()
            .filter(|w| w.strong_count() > 0 && !w.ptr_eq(&target))
            .cloned()
            .collect();
        self.core.waker_count.store(v.len(), Ordering::SeqCst);
        ctrl.wakers = Arc::new(v);
    }

    /// Current length of the waker list (test instrumentation for the
    /// bounded-waker-list guarantee).
    #[cfg(test)]
    fn waker_list_len(&self) -> usize {
        self.core.control.lock().wakers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgItem;
    use machsim::wall;
    use std::thread;

    fn ctx() -> IpcContext {
        IpcContext::default_machine()
    }

    #[test]
    fn send_then_receive() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        tx.send(Message::new(9).with(MsgItem::bytes(b"hi".to_vec())), None)
            .expect("send of a composed message succeeds");
        let m = rx
            .receive(None)
            .expect("invariant: a queued message is receivable");
        assert_eq!(m.id, 9);
        assert_eq!(
            m.body[0].as_bytes().expect("body element is inline bytes"),
            b"hi"
        );
    }

    #[test]
    fn fifo_order() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        for i in 0..3 {
            tx.send(Message::new(i), None)
                .expect("send to a live port succeeds");
        }
        for i in 0..3 {
            assert_eq!(
                rx.receive(None)
                    .expect("invariant: a queued message is receivable")
                    .id,
                i
            );
        }
    }

    #[test]
    fn receive_timeout() {
        let c = ctx();
        let (rx, _tx) = ReceiveRight::allocate(&c);
        let r = rx.receive(Some(Duration::from_millis(10)));
        assert_eq!(r.unwrap_err(), IpcError::Timeout);
    }

    #[test]
    fn backlog_blocks_and_unblocks_sender() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        rx.set_backlog(1);
        tx.send(Message::new(0), None)
            .expect("send to a live port succeeds");
        assert_eq!(
            tx.send(Message::new(1), Some(Duration::ZERO)).unwrap_err(),
            IpcError::WouldBlock
        );
        let tx2 = tx.clone();
        let h = thread::spawn(move || tx2.send(Message::new(1), None));
        wall::sleep(Duration::from_millis(20));
        assert_eq!(
            rx.receive(None)
                .expect("invariant: a queued message is receivable")
                .id,
            0
        );
        h.join()
            .expect("sender thread exits cleanly")
            .expect("blocked send completes once space frees");
        assert_eq!(
            rx.receive(None)
                .expect("invariant: a queued message is receivable")
                .id,
            1
        );
    }

    #[test]
    fn send_timeout_when_full() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        rx.set_backlog(1);
        tx.send(Message::new(0), None)
            .expect("send to a live port succeeds");
        let err = tx
            .send(Message::new(1), Some(Duration::from_millis(10)))
            .unwrap_err();
        assert_eq!(err, IpcError::Timeout);
    }

    #[test]
    fn death_wakes_blocked_receiver() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        let core = Arc::clone(&rx.core);
        let h = thread::spawn(move || {
            let r = rx.receive(None);
            drop(rx); // second destroy is a no-op
            r
        });
        wall::sleep(Duration::from_millis(20));
        drop(tx); // Dropping send rights alone must not kill the port.
        wall::sleep(Duration::from_millis(20));
        // Destroying the port must wake the blocked receiver with a death
        // error, and the thread must actually exit (no leaked waiter).
        core.destroy();
        assert_eq!(
            h.join()
                .expect("receiver thread exits cleanly")
                .unwrap_err(),
            IpcError::PortDied
        );
    }

    #[test]
    fn death_wakes_blocked_sender() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        rx.set_backlog(1);
        tx.send(Message::new(0), None)
            .expect("send to a live port succeeds");
        let tx2 = tx.clone();
        let h = thread::spawn(move || tx2.send(Message::new(1), None));
        wall::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(
            h.join().expect("sender thread exits cleanly").unwrap_err(),
            IpcError::PortDied
        );
    }

    #[test]
    fn death_notification_posted() {
        let c = ctx();
        let (watched_rx, watched_tx) = ReceiveRight::allocate(&c);
        let (notify_rx, notify_tx) = ReceiveRight::allocate(&c);
        watched_tx.subscribe_death(&notify_tx);
        let watched_id = watched_rx.id();
        drop(watched_rx);
        let m = notify_rx
            .receive(Some(Duration::from_secs(1)))
            .expect("notification arrives within the timeout");
        assert_eq!(m.id, MSG_ID_PORT_DEATH);
        assert_eq!(
            m.body[0].as_u64s().expect("body element is a u64 vector"),
            vec![watched_id.0]
        );
    }

    #[test]
    fn subscribing_to_dead_port_notifies_immediately() {
        let c = ctx();
        let (watched_rx, watched_tx) = ReceiveRight::allocate(&c);
        drop(watched_rx);
        let (notify_rx, notify_tx) = ReceiveRight::allocate(&c);
        watched_tx.subscribe_death(&notify_tx);
        let m = notify_rx
            .receive(Some(Duration::from_secs(1)))
            .expect("notification arrives within the timeout");
        assert_eq!(m.id, MSG_ID_PORT_DEATH);
    }

    #[test]
    fn rpc_round_trip() {
        let c = ctx();
        let (server_rx, server_tx) = ReceiveRight::allocate(&c);
        let h = thread::spawn(move || {
            let req = server_rx
                .receive(None)
                .expect("invariant: a queued message is receivable");
            let reply = req.reply.expect("rpc carries reply port");
            reply
                .send(Message::new(req.id + 1), None)
                .expect("reply send");
        });
        let resp = server_tx
            .rpc(Message::new(41), None, None)
            .expect("rpc to a live server succeeds");
        assert_eq!(resp.id, 42);
        h.join().expect("sender thread exits cleanly");
    }

    #[test]
    fn rpc_times_out_when_server_silent() {
        let c = ctx();
        let (_server_rx, server_tx) = ReceiveRight::allocate(&c);
        let err = server_tx
            .rpc(Message::new(1), None, Some(Duration::from_millis(10)))
            .unwrap_err();
        assert_eq!(err, IpcError::Timeout);
    }

    #[test]
    fn rights_travel_in_messages() {
        let c = ctx();
        let (carrier_rx, carrier_tx) = ReceiveRight::allocate(&c);
        let (inner_rx, inner_tx) = ReceiveRight::allocate(&c);
        carrier_tx
            .send(
                Message::new(1).with(MsgItem::SendRights(vec![inner_tx])),
                None,
            )
            .expect("send of a composed message succeeds");
        let m = carrier_rx
            .receive(None)
            .expect("invariant: a queued message is receivable");
        let MsgItem::SendRights(rights) = &m.body[0] else {
            panic!("expected send rights");
        };
        rights[0]
            .send(Message::new(7), None)
            .expect("send to a live port succeeds");
        assert_eq!(
            inner_rx
                .receive(None)
                .expect("invariant: a queued message is receivable")
                .id,
            7
        );
    }

    #[test]
    fn receive_right_travels_and_port_survives() {
        let c = ctx();
        let (carrier_rx, carrier_tx) = ReceiveRight::allocate(&c);
        let (inner_rx, inner_tx) = ReceiveRight::allocate(&c);
        inner_tx
            .send(Message::new(5), None)
            .expect("send to a live port succeeds");
        carrier_tx
            .send(Message::new(1).with(MsgItem::ReceiveRight(inner_rx)), None)
            .expect("send of a composed message succeeds");
        let m = carrier_rx
            .receive(None)
            .expect("invariant: a queued message is receivable");
        let MsgItem::ReceiveRight(moved_rx) = m
            .body
            .into_iter()
            .next()
            .expect("iterator has the expected element")
        else {
            panic!("expected receive right");
        };
        // The queued message survived the migration of receivership.
        assert_eq!(
            moved_rx
                .receive(None)
                .expect("invariant: a queued message is receivable")
                .id,
            5
        );
    }

    #[test]
    fn dropping_undelivered_message_destroys_carried_receive_right() {
        let c = ctx();
        let (carrier_rx, carrier_tx) = ReceiveRight::allocate(&c);
        let (inner_rx, inner_tx) = ReceiveRight::allocate(&c);
        carrier_tx
            .send(Message::new(1).with(MsgItem::ReceiveRight(inner_rx)), None)
            .expect("send of a composed message succeeds");
        drop(carrier_rx); // Destroys the carrier and its queued message.
        assert!(!inner_tx.is_alive());
    }

    #[test]
    fn status_reports_queue_and_senders() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        let tx2 = tx.clone();
        tx.send(Message::new(0), None)
            .expect("send to a live port succeeds");
        let st = rx.status();
        assert_eq!(st.num_msgs, 1);
        assert_eq!(st.backlog, DEFAULT_BACKLOG);
        assert!(st.has_receiver);
        assert_eq!(st.senders, 2);
        drop(tx2);
        assert_eq!(rx.status().senders, 1);
    }

    #[test]
    fn send_charges_clock_and_stats() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        let before = c.clock.now_ns();
        tx.send(Message::new(0).with(MsgItem::bytes(vec![0u8; 100])), None)
            .expect("send of a composed message succeeds");
        assert!(c.clock.now_ns() > before);
        assert_eq!(c.stats.get(machsim::stats::keys::MSG_SENT), 1);
        rx.receive(None)
            .expect("invariant: a queued message is receivable");
        assert_eq!(c.stats.get(machsim::stats::keys::MSG_RECEIVED), 1);
        assert_eq!(c.stats.get(machsim::stats::keys::BYTES_COPIED), 100);
    }

    #[test]
    fn ool_transfer_counts_pages_not_bytes() {
        let c = ctx();
        let (_rx, tx) = ReceiveRight::allocate(&c);
        let big = crate::message::OolBuffer::from_vec(vec![0u8; 8192]);
        tx.send(Message::new(0).with(MsgItem::OutOfLine(big)), None)
            .expect("send of a composed message succeeds");
        assert_eq!(c.stats.get(machsim::stats::keys::PAGES_REMAPPED), 2);
        assert_eq!(c.stats.get(machsim::stats::keys::BYTES_COPIED), 0);
    }

    #[test]
    fn receive_limited_rejects_oversized_but_keeps_it_queued() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        tx.send(Message::new(1).with(MsgItem::bytes(vec![0u8; 100])), None)
            .expect("send of a composed message succeeds");
        assert_eq!(
            rx.receive_limited(10, Some(Duration::from_millis(10)))
                .unwrap_err(),
            IpcError::MsgTooLarge
        );
        // The message is still there for a big-enough receive.
        let m = rx
            .receive_limited(100, None)
            .expect("invariant: a queued message is receivable");
        assert_eq!(m.id, 1);
    }

    #[test]
    fn rpc_limited_enforces_rcv_size() {
        let c = ctx();
        let (server_rx, server_tx) = ReceiveRight::allocate(&c);
        let h = thread::spawn(move || {
            let req = server_rx
                .receive(None)
                .expect("invariant: a queued message is receivable");
            let reply = req.reply.expect("reply port");
            reply
                .send(Message::new(2).with(MsgItem::bytes(vec![0u8; 4096])), None)
                .expect("send of a composed message succeeds");
        });
        let err = server_tx
            .rpc_limited(Message::new(1), 64, None, Some(Duration::from_secs(5)))
            .unwrap_err();
        assert_eq!(err, IpcError::MsgTooLarge);
        h.join().expect("sender thread exits cleanly");
    }

    #[test]
    fn many_senders_one_receiver() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        rx.set_backlog(64);
        thread::scope(|s| {
            for t in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..10 {
                        tx.send(Message::new(t * 100 + i), None)
                            .expect("send to a live port succeeds");
                    }
                });
            }
            let mut got = Vec::new();
            for _ in 0..40 {
                got.push(
                    rx.receive(Some(Duration::from_secs(5)))
                        .expect("a stormed message arrives within the timeout")
                        .id,
                );
            }
            got.sort_unstable();
            let mut want: Vec<u32> = (0..4)
                .flat_map(|t| (0..10).map(move |i| t * 100 + i))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        });
    }

    // ----- unwrap-audit regression tests -----
    //
    // Every user-reachable failure (port death, backlog overflow,
    // timeout, oversized receive) must surface as an `IpcError`, never a
    // panic. The tests below pin each of those paths.

    #[test]
    fn send_to_dead_port_is_an_error_not_a_panic() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        drop(rx);
        assert_eq!(
            tx.send(Message::new(1), None).unwrap_err(),
            IpcError::PortDied
        );
        assert_eq!(
            tx.send(Message::new(2), Some(Duration::ZERO)).unwrap_err(),
            IpcError::PortDied
        );
        // Kernel notifications to a dead port are silently dropped.
        tx.send_notification(Message::new(3));
        assert!(!tx.is_alive());
    }

    #[test]
    fn rpc_to_dead_port_is_an_error_not_a_panic() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        drop(rx);
        assert_eq!(
            tx.rpc(Message::new(1), None, Some(Duration::from_millis(10)))
                .unwrap_err(),
            IpcError::PortDied
        );
    }

    #[test]
    fn backlog_overflow_reports_would_block_then_timeout() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        rx.set_backlog(1);
        tx.send(Message::new(0), None)
            .expect("send to a live port succeeds");
        // Non-blocking probe: WouldBlock, message not lost or duplicated.
        assert_eq!(
            tx.send(Message::new(1), Some(Duration::ZERO)).unwrap_err(),
            IpcError::WouldBlock
        );
        // Bounded wait on a still-full queue: Timeout.
        assert_eq!(
            tx.send(Message::new(1), Some(Duration::from_millis(10)))
                .unwrap_err(),
            IpcError::Timeout
        );
        assert_eq!(rx.queued(), 1);
        assert_eq!(
            rx.receive(None)
                .expect("invariant: a queued message is receivable")
                .id,
            0
        );
    }

    #[test]
    fn port_death_during_blocked_send_is_an_error() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        rx.set_backlog(1);
        tx.send(Message::new(0), None)
            .expect("send to a live port succeeds");
        let t = thread::spawn(move || tx.send(Message::new(1), None));
        wall::sleep(Duration::from_millis(20));
        drop(rx); // kill the port under the blocked sender
        assert_eq!(
            t.join().expect("sender thread exits cleanly").unwrap_err(),
            IpcError::PortDied
        );
    }

    #[test]
    fn oversized_receive_stays_queued_across_retries() {
        // Regression for the `dequeue_limited` rewrite: repeated
        // undersized receives must keep returning MsgTooLarge with the
        // message intact, and a correctly sized receive still gets it.
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        tx.send(Message::new(7).with(MsgItem::bytes(vec![0u8; 128])), None)
            .expect("send of a composed message succeeds");
        for _ in 0..3 {
            assert_eq!(
                rx.receive_limited(16, Some(Duration::ZERO)).unwrap_err(),
                IpcError::MsgTooLarge
            );
            assert_eq!(rx.queued(), 1);
        }
        assert_eq!(
            rx.receive_limited(128, None)
                .expect("invariant: a queued message is receivable")
                .id,
            7
        );
    }

    // ----- timeout/deadline regression tests -----

    #[test]
    fn timed_waits_survive_waker_storm() {
        // Regression: the old wait loops re-armed the *full* timeout on
        // every condvar wakeup, so a steady stream of spurious wakeups
        // (here: deliberate notify_all storms faster than the timeout)
        // postponed expiry indefinitely. With a deadline computed once,
        // the waits below must expire on schedule despite the storm.
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        rx.set_backlog(1);
        tx.send(Message::new(0), None)
            .expect("send to a live port succeeds");
        let core = Arc::clone(&rx.core);
        let stop = Arc::new(AtomicBool::new(false));
        let storm = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    drop(core.control.lock());
                    core.recv_cv.notify_all();
                    core.send_cv.notify_all();
                    wall::sleep(Duration::from_millis(5));
                }
            })
        };
        // The storm pings every 5 ms; both timed waits use 60 ms. With
        // the re-arm bug neither would expire until the storm ends, so a
        // 1 s watchdog distinguishes the behaviors cleanly.
        let watchdog = Deadline::after(Duration::from_secs(1));
        assert_eq!(
            tx.send(Message::new(1), Some(Duration::from_millis(60)))
                .unwrap_err(),
            IpcError::Timeout
        );
        rx.receive(None)
            .expect("invariant: a queued message is receivable");
        assert_eq!(
            rx.receive(Some(Duration::from_millis(60))).unwrap_err(),
            IpcError::Timeout
        );
        assert!(
            !watchdog.expired(),
            "timed waits kept re-arming under the waker storm"
        );
        stop.store(true, Ordering::Relaxed);
        storm.join().expect("storm thread exits cleanly");
    }

    #[test]
    fn death_beats_timeout_on_blocked_receive() {
        // A receiver whose timed wait expires after the port died must
        // report PortDied, not Timeout — even when death arrived without
        // a wakeup (simulated here by flipping the flag directly).
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        let core = Arc::clone(&rx.core);
        let h = thread::spawn(move || {
            let r = rx.receive(Some(Duration::from_millis(100)));
            drop(rx); // destroy is a no-op on the already-dead port
            r
        });
        wall::sleep(Duration::from_millis(20));
        core.control.lock().dead = true; // silent death: no notify
        core.receiver_alive.store(0, Ordering::SeqCst);
        assert_eq!(
            h.join()
                .expect("receiver thread exits cleanly")
                .unwrap_err(),
            IpcError::PortDied
        );
        drop(tx);
    }

    #[test]
    fn death_beats_timeout_on_blocked_send() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        rx.set_backlog(1);
        tx.send(Message::new(0), None)
            .expect("send to a live port succeeds");
        let core = Arc::clone(&rx.core);
        let tx2 = tx.clone();
        let h = thread::spawn(move || tx2.send(Message::new(1), Some(Duration::from_millis(100))));
        wall::sleep(Duration::from_millis(20));
        core.control.lock().dead = true; // silent death: no notify
        core.receiver_alive.store(0, Ordering::SeqCst);
        assert_eq!(
            h.join().expect("sender thread exits cleanly").unwrap_err(),
            IpcError::PortDied
        );
        // Ordering (b): a timeout on a port that is still alive at expiry
        // stays a Timeout...
        let (rx2, tx2) = ReceiveRight::allocate(&c);
        rx2.set_backlog(1);
        tx2.send(Message::new(0), None)
            .expect("send to a live port succeeds");
        assert_eq!(
            tx2.send(Message::new(1), Some(Duration::from_millis(10)))
                .unwrap_err(),
            IpcError::Timeout
        );
        // ...and death after that reports PortDied on the next attempt.
        drop(rx2);
        assert_eq!(
            tx2.send(Message::new(1), Some(Duration::from_millis(10)))
                .unwrap_err(),
            IpcError::PortDied
        );
    }

    // ----- port-set waker hygiene -----

    #[test]
    fn dropped_port_sets_keep_waker_list_bounded() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        let keeper = Arc::new(SetWaker::default());
        rx.register_waker(&keeper);
        for _ in 0..1000 {
            let w = Arc::new(SetWaker::default());
            rx.register_waker(&w);
            drop(w); // the port outlives the port set
        }
        // Registration prunes dead entries, so 1000 dead port sets leave
        // at most the live keeper plus the most recent corpse.
        assert!(
            rx.waker_list_len() <= 2,
            "waker list grew to {}",
            rx.waker_list_len()
        );
        let gen = keeper.generation();
        tx.send(Message::new(1), None)
            .expect("send to a live port succeeds");
        assert!(
            keeper.wait(gen, Some(Duration::from_secs(1))),
            "live waker still pinged after mass pruning"
        );
        assert!(rx.waker_list_len() <= 2);
    }

    // ----- sharded queue semantics -----

    #[test]
    fn sharded_port_preserves_per_sender_fifo_without_loss() {
        const SENDERS: u32 = 8;
        const PER_SENDER: u32 = 500;
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        rx.set_backlog(64);
        thread::scope(|s| {
            for t in 0..SENDERS {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..PER_SENDER {
                        tx.send(Message::new(t * 10_000 + i), None)
                            .expect("send to a live port succeeds");
                    }
                });
            }
            let mut last = [None::<u32>; SENDERS as usize];
            let mut counts = [0u32; SENDERS as usize];
            for _ in 0..SENDERS * PER_SENDER {
                let id = rx
                    .receive(Some(Duration::from_secs(30)))
                    .expect("a stormed message arrives within the timeout")
                    .id;
                let sender = (id / 10_000) as usize;
                let seq = id % 10_000;
                if let Some(prev) = last[sender] {
                    assert!(
                        seq > prev,
                        "sender {sender} delivered {seq} after {prev}: FIFO broken"
                    );
                }
                last[sender] = Some(seq);
                counts[sender] += 1;
            }
            assert_eq!(counts, [PER_SENDER; SENDERS as usize], "messages lost");
        });
    }

    // ----- batched send/receive -----

    #[test]
    fn send_many_receive_many_roundtrip() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        rx.set_backlog(128);
        let batch: Vec<Message> = (0..100).map(Message::new).collect();
        assert_eq!(
            tx.send_many(batch, None)
                .expect("batched send to a roomy queue succeeds"),
            100
        );
        assert_eq!(c.stats.get(machsim::stats::keys::MSG_SENT), 100);
        let first = rx
            .receive_many(64, None)
            .expect("invariant: queued messages are receivable");
        assert_eq!(first.len(), 64);
        for (i, m) in first.iter().enumerate() {
            assert_eq!(m.id, i as u32, "single-sender batch arrives in order");
        }
        let rest = rx
            .receive_many(64, None)
            .expect("invariant: queued messages are receivable");
        assert_eq!(rest.len(), 36);
        assert_eq!(rest[0].id, 64);
        assert_eq!(c.stats.get(machsim::stats::keys::MSG_RECEIVED), 100);
        // One batch charge for the send, one per receive_many drain.
        assert_eq!(c.stats.get(machsim::stats::keys::IPC_BATCHES), 3);
    }

    #[test]
    fn send_many_reports_partial_progress_on_full_queue() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        rx.set_backlog(4);
        let batch: Vec<Message> = (0..10).map(Message::new).collect();
        // Non-blocking batched send delivers what fits and reports it.
        assert_eq!(
            tx.send_many(batch, Some(Duration::ZERO))
                .expect("partial batched send reports progress, not error"),
            4
        );
        assert_eq!(rx.queued(), 4);
        // An empty batch is trivially complete.
        assert_eq!(
            tx.send_many(Vec::new(), None)
                .expect("empty batch is a no-op"),
            0
        );
    }

    #[test]
    fn receive_many_empty_port_times_out() {
        let c = ctx();
        let (rx, _tx) = ReceiveRight::allocate(&c);
        assert_eq!(
            rx.receive_many(8, Some(Duration::from_millis(10)))
                .unwrap_err(),
            IpcError::Timeout
        );
        assert!(rx
            .receive_many(0, None)
            .expect("zero-max receive is a no-op")
            .is_empty());
    }

    // ----- handoff fast path -----

    #[test]
    fn handoff_delivers_to_waiting_receiver() {
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        let core = Arc::clone(&rx.core);
        let h = thread::spawn(move || {
            let m = rx.receive(Some(Duration::from_secs(10)));
            (rx, m)
        });
        assert!(
            wall::poll_until(Duration::from_secs(5), Duration::from_millis(1), || {
                core.recv_waiters.load(Ordering::SeqCst) > 0
            }),
            "receiver never registered as a waiter"
        );
        let before = c.clock.now_ns();
        tx.send(Message::new(7), None)
            .expect("send to a live port succeeds");
        let handoff_cost = c.clock.now_ns() - before;
        let (rx, m) = h.join().expect("receiver thread exits cleanly");
        assert_eq!(m.expect("handed-off message arrives").id, 7);
        assert_eq!(c.stats.get(machsim::stats::keys::IPC_HANDOFFS), 1);
        // The donation must charge less than a full queue transit.
        assert!(
            handoff_cost < c.cost.message_ns,
            "handoff charged {handoff_cost} ns, full message is {} ns",
            c.cost.message_ns
        );
        // Ablation: with handoff disabled the same shape takes the queue
        // path — message still arrives, but no handoff is counted.
        rx.set_handoff(false);
        let core = Arc::clone(&rx.core);
        let h = thread::spawn(move || {
            let m = rx.receive(Some(Duration::from_secs(10)));
            (rx, m)
        });
        assert!(
            wall::poll_until(Duration::from_secs(5), Duration::from_millis(1), || {
                core.recv_waiters.load(Ordering::SeqCst) > 0
            }),
            "receiver never registered as a waiter"
        );
        let before = c.clock.now_ns();
        tx.send(Message::new(8), None)
            .expect("send to a live port succeeds");
        let queued_cost = c.clock.now_ns() - before;
        let (_rx, m) = h.join().expect("receiver thread exits cleanly");
        assert_eq!(m.expect("queued message arrives").id, 8);
        assert_eq!(c.stats.get(machsim::stats::keys::IPC_HANDOFFS), 1);
        assert!(handoff_cost < queued_cost);
    }

    #[test]
    fn handoff_never_overtakes_queued_messages() {
        // A receiver parked behind a non-empty queue must get the queued
        // messages first: the handoff slot is only used at depth zero, so
        // FIFO cannot be violated by the fast path.
        let c = ctx();
        let (rx, tx) = ReceiveRight::allocate(&c);
        tx.send(Message::new(1), None)
            .expect("send to a live port succeeds");
        tx.send(Message::new(2), None)
            .expect("send to a live port succeeds");
        assert_eq!(rx.receive(None).expect("queued message").id, 1);
        assert_eq!(rx.receive(None).expect("queued message").id, 2);
        assert_eq!(c.stats.get(machsim::stats::keys::IPC_HANDOFFS), 0);
    }
}
