//! IPC error codes.
//!
//! The paper leans on the fact that communication failures have a small,
//! well-understood set of outcomes (timeout, destroyed destination,
//! interrupted wait) and then maps *memory* failures onto the same set
//! (Section 6.2.1). Keeping the error enum small and explicit here lets
//! `machcore::failure` reuse it almost verbatim for memory faults.

use std::fmt;

/// Result of a failed IPC operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IpcError {
    /// The operation did not complete within the caller's timeout.
    Timeout,
    /// The destination port's receive right has been destroyed.
    PortDied,
    /// The caller does not hold the right required for the operation.
    InvalidRight,
    /// The name does not denote a right in this port space.
    InvalidName,
    /// A `msg_rpc` was attempted without a reply port in the header.
    NoReplyPort,
    /// The queue is full and the caller asked not to block.
    WouldBlock,
    /// The received message exceeds the caller's maximum size.
    MsgTooLarge,
    /// No ports are enabled for a default-group receive.
    NothingEnabled,
}

impl fmt::Display for IpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IpcError::Timeout => "operation timed out",
            IpcError::PortDied => "destination port destroyed",
            IpcError::InvalidRight => "caller lacks required port right",
            IpcError::InvalidName => "no such port name in this space",
            IpcError::NoReplyPort => "msg_rpc requires a reply port",
            IpcError::WouldBlock => "queue full and SEND_NOTIFY not requested",
            IpcError::MsgTooLarge => "message larger than receive buffer",
            IpcError::NothingEnabled => "no ports enabled for default receive",
        };
        f.write_str(s)
    }
}

impl std::error::Error for IpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(IpcError::Timeout.to_string(), "operation timed out");
        assert!(IpcError::PortDied.to_string().contains("destroyed"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(IpcError::Timeout, IpcError::Timeout);
        assert_ne!(IpcError::Timeout, IpcError::PortDied);
    }
}
