//! Slab recycler for message buffers.
//!
//! The IPC hot paths (the netmsgserver proxy, the pager request loop)
//! allocate a fresh [`Message`] — a body `Vec` plus one or more inline
//! byte buffers — for every request and drop it after the reply. On a
//! port doing millions of messages per second that is two allocator
//! round-trips per message for buffers whose sizes barely vary. The slab
//! keeps small per-thread pools of retired buffers and hands them back
//! out, so steady-state traffic runs allocation-free.
//!
//! The pools are thread-local (no locks, no sharing), bounded in both
//! count and per-buffer capacity (a giant one-off message must not pin
//! its allocation forever), and entirely optional: a [`Message`] built
//! here is indistinguishable from one built with [`Message::new`], and
//! recycling is a courtesy, not an obligation — a dropped message is
//! merely an allocator free.
//!
//! Port rights found in a recycled message are dropped normally (dropping
//! a carried [`crate::ReceiveRight`] still destroys its port); only plain
//! byte storage is salvaged.

use crate::message::{Message, MsgItem, TypeTag};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Retired message bodies kept per thread.
const MAX_POOLED_BODIES: usize = 64;
/// Retired inline byte buffers kept per thread.
const MAX_POOLED_BUFFERS: usize = 128;
/// Largest buffer capacity worth hoarding; bigger ones are freed.
const MAX_BUFFER_CAPACITY: usize = 64 * 1024;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

#[derive(Default)]
struct Pool {
    bodies: Vec<Vec<MsgItem>>,
    buffers: Vec<Vec<u8>>,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Builds a [`Message`] whose body vector is recycled when a retired one
/// is available; otherwise equivalent to [`Message::new`].
pub fn message(id: u32) -> Message {
    let body = POOL.with(|p| p.borrow_mut().bodies.pop());
    let mut msg = Message::new(id);
    match body {
        Some(b) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            msg.body = b;
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
        }
    }
    msg
}

/// Builds an inline byte item backed by a recycled buffer when one is
/// available; otherwise equivalent to [`MsgItem::bytes`].
pub fn bytes(data: &[u8]) -> MsgItem {
    let buf = POOL.with(|p| p.borrow_mut().buffers.pop());
    let data = match buf {
        Some(mut b) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            b.extend_from_slice(data);
            b
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            data.to_vec()
        }
    };
    MsgItem::Inline {
        tag: TypeTag::Byte,
        data,
    }
}

/// Retires a finished message, salvaging its body vector and any inline
/// byte storage into the calling thread's pool. Rights and out-of-line
/// buffers carried in the body are dropped with their usual semantics.
pub fn recycle(msg: Message) {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let mut body = msg.body;
        for item in body.drain(..) {
            if let MsgItem::Inline { mut data, .. } = item {
                if pool.buffers.len() < MAX_POOLED_BUFFERS
                    && data.capacity() > 0
                    && data.capacity() <= MAX_BUFFER_CAPACITY
                {
                    data.clear();
                    pool.buffers.push(data);
                }
            }
            // Other item kinds (rights, OOL regions, opaque handles) drop
            // here with their normal effects.
        }
        if pool.bodies.len() < MAX_POOLED_BODIES {
            pool.bodies.push(body);
        }
    });
    // msg.reply (if any) dropped here as usual.
}

/// Recycler effectiveness counters: `(hits, misses)` across all threads.
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IpcContext;

    #[test]
    fn recycled_body_is_reused() {
        let mut m = message(1);
        m.body.reserve(8);
        let ptr = m.body.as_ptr() as usize;
        recycle(m);
        let m2 = message(2);
        assert_eq!(m2.body.as_ptr() as usize, ptr, "body vec not recycled");
        assert!(m2.body.is_empty());
        let (hits, _) = stats();
        assert!(hits >= 1);
    }

    #[test]
    fn recycled_inline_buffer_is_reused_and_cleared() {
        let m = message(1).with(bytes(b"hello slab"));
        recycle(m);
        let item = bytes(b"xy");
        assert_eq!(
            item.as_bytes().expect("inline item holds bytes"),
            b"xy",
            "recycled buffer must be cleared before reuse"
        );
    }

    #[test]
    fn oversized_buffers_are_not_hoarded() {
        let m = message(1).with(bytes(&vec![0u8; MAX_BUFFER_CAPACITY + 1]));
        recycle(m);
        // The next pooled buffer (if any) must be small; this is mostly a
        // does-not-explode check — repeated giant messages must not pin
        // their allocations in the pool.
        let item = bytes(b"ok");
        assert_eq!(item.as_bytes().expect("inline item holds bytes"), b"ok");
    }

    #[test]
    fn recycling_drops_carried_rights_normally() {
        let c = IpcContext::default_machine();
        let (inner_rx, inner_tx) = crate::ReceiveRight::allocate(&c);
        let m = message(1).with(MsgItem::ReceiveRight(inner_rx));
        recycle(m);
        assert!(
            !inner_tx.is_alive(),
            "recycling must not leak a carried receive right"
        );
    }
}
