//! machsched — the simulated multiprocessor scheduler.
//!
//! The paper's measurements (Section 9) were taken on real shared-memory
//! multiprocessors whose kernels ran a per-CPU scheduler; this crate gives
//! the reproduction the same shape. Each simulated CPU is one host worker
//! thread with a private run queue (locked under its own
//! [`LockClass::RunQueue`] class, the outermost rank of the hierarchy), a
//! node identity for NUMA-affine placement, and a randomized work-stealing
//! fallback for when its queue drains.
//!
//! Placement follows cache-affinity scheduling: every schedulable unit
//! carries a [`TaskTag`] recording its home node and the CPU it last ran
//! on, and [`Scheduler::submit`] prefers, in order, the submitting CPU
//! (local spawn, Cilk-style), the unit's last CPU, the least-loaded CPU of
//! its home node, and finally the least-loaded CPU anywhere. Idle CPUs
//! steal from the back of a random victim's queue, so a pile of units
//! spawned by one "make" task fans out across the machine.
//!
//! Preemption is cooperative and charged in sim-time: a unit body returns
//! [`Run::Yield`] at its phase boundaries, and the dispatcher re-queues it
//! once the shared [`machsim::SimClock`] has advanced a full time slice,
//! charging the cost model's syscall latency as the context-switch price.
//! All decisions are driven by sim-time and a seeded [`SplitMix64`], so a
//! run's counters are reproducible in distribution.

pub mod protocol;

use machsim::lockdep::{ClassMutex, LockClass};
use machsim::stats::{keys, Counter};
use machsim::{wall, Machine, SplitMix64};
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sentinel for "never ran on any CPU".
const NO_CPU: usize = usize::MAX;

/// How long an idle worker parks before re-checking every queue (a
/// backstop; submitters signal the idle condvar on every push).
const IDLE_TICK: Duration = Duration::from_millis(1);

/// The most units one steal takes from a victim.
const STEAL_CAP: usize = 4;

thread_local! {
    /// Which simulated CPU the current host thread is, if it is a worker.
    static CURRENT_CPU: Cell<usize> = const { Cell::new(NO_CPU) };
}

/// The simulated CPU the calling thread is running on, if any.
pub fn current_cpu() -> Option<usize> {
    let cpu = CURRENT_CPU.with(|c| c.get());
    (cpu != NO_CPU).then_some(cpu)
}

/// Scheduling identity of one task: where its memory lives and where it
/// last ran. Shared by every unit the task submits.
#[derive(Debug)]
pub struct TaskTag {
    home_node: usize,
    last_cpu: AtomicUsize,
}

impl TaskTag {
    /// A tag for a task homed on `home_node`.
    pub fn new(home_node: usize) -> Arc<Self> {
        Arc::new(Self {
            home_node,
            last_cpu: AtomicUsize::new(NO_CPU),
        })
    }

    /// The NUMA node this task's anonymous memory is homed on.
    pub fn home_node(&self) -> usize {
        self.home_node
    }

    /// The CPU this tag's most recent unit ran on, if any ran yet.
    pub fn last_cpu(&self) -> Option<usize> {
        let cpu = self.last_cpu.load(Ordering::Relaxed);
        (cpu != NO_CPU).then_some(cpu)
    }
}

/// What a unit body tells the dispatcher after one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Run {
    /// The unit finished; release its join handle.
    Done,
    /// The unit reached a phase boundary and can be preempted if its
    /// sim-time slice is spent, else it is stepped again immediately.
    Yield,
}

/// Completion flag shared by a unit and its [`JoinHandle`].
#[derive(Default)]
struct DoneState {
    flag: Mutex<bool>,
    cv: Condvar,
}

/// Waits for one submitted unit to finish.
pub struct JoinHandle {
    done: Arc<DoneState>,
}

impl JoinHandle {
    /// Blocks the host thread until the unit's body returns [`Run::Done`].
    pub fn join(&self) {
        let mut flag = self.done.flag.lock();
        while !*flag {
            self.done.cv.wait(&mut flag);
        }
    }

    /// Whether the unit already finished.
    pub fn is_finished(&self) -> bool {
        *self.done.flag.lock()
    }
}

/// One schedulable unit: a steppable body plus its task identity.
struct Unit {
    body: Box<dyn FnMut() -> Run + Send>,
    tag: Arc<TaskTag>,
    done: Arc<DoneState>,
}

impl Unit {
    fn finish(&self) {
        *self.done.flag.lock() = true;
        self.done.cv.notify_all();
    }
}

/// One simulated CPU.
struct Cpu {
    /// The run queue. Owner pushes/pops the front end; thieves take from
    /// the back. `rq` is the classified field machlint maps to the
    /// `run-queue` lock class.
    rq: ClassMutex<VecDeque<Unit>>,
    /// Queue depth mirror for lock-free placement decisions and gauges.
    depth: AtomicUsize,
    /// The NUMA node this CPU's memory accesses are local to.
    node: usize,
}

/// Static shape of the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Simulated CPU count (min 1).
    pub cpus: usize,
    /// NUMA node count; CPUs are block-distributed over nodes (min 1).
    pub nodes: usize,
    /// Sim-time slice after which a yielding unit is re-queued.
    pub time_slice_ns: u64,
    /// Whether idle CPUs steal from loaded ones.
    pub steal: bool,
    /// Seed for the per-CPU steal-victim generators.
    pub seed: u64,
    /// Called once per worker with its CPU's node — the kernel installs
    /// `machvm::numa::set_current_node` here so a task's faults
    /// first-touch on the node of the CPU that runs it.
    pub pin_node: Option<fn(usize)>,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            cpus: 4,
            nodes: 1,
            time_slice_ns: 2_000_000,
            steal: true,
            seed: 0x5eed_0001,
            pin_node: None,
        }
    }
}

/// Pre-resolved `sched.*` counters (see `machsim::stats::keys`).
struct SchedCounters {
    dispatches: Counter,
    steals: Counter,
    migrations: Counter,
    affinity_hits: Counter,
    affinity_misses: Counter,
    preemptions: Counter,
}

impl SchedCounters {
    fn new(machine: &Machine) -> Self {
        Self {
            dispatches: machine.stats.counter(keys::SCHED_DISPATCHES),
            steals: machine.stats.counter(keys::SCHED_STEALS),
            migrations: machine.stats.counter(keys::SCHED_MIGRATIONS),
            affinity_hits: machine.stats.counter(keys::SCHED_AFFINITY_HITS),
            affinity_misses: machine.stats.counter(keys::SCHED_AFFINITY_MISSES),
            preemptions: machine.stats.counter(keys::SCHED_PREEMPTIONS),
        }
    }
}

/// The per-CPU run-queue scheduler of one simulated machine.
pub struct Scheduler {
    machine: Machine,
    cfg: SchedConfig,
    cpus: Vec<Cpu>,
    /// Parking lot for idle workers; paired with `wake`.
    idle: Mutex<()>,
    wake: Condvar,
    stop: AtomicBool,
    /// Workers that have not yet run their drain loop to completion;
    /// `quiesce` polls this toward zero.
    active: AtomicUsize,
    counters: SchedCounters,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Builds the CPUs, registers queue-depth gauges, and starts one
    /// worker thread per simulated CPU.
    pub fn start(machine: &Machine, cfg: SchedConfig) -> Arc<Self> {
        let mut cfg = cfg;
        cfg.cpus = cfg.cpus.max(1);
        cfg.nodes = cfg.nodes.max(1);
        let cpus = (0..cfg.cpus)
            .map(|i| Cpu {
                rq: ClassMutex::new(LockClass::RunQueue, VecDeque::new()),
                depth: AtomicUsize::new(0),
                node: i * cfg.nodes / cfg.cpus,
            })
            .collect();
        let sched = Arc::new(Self {
            machine: machine.clone(),
            cfg,
            cpus,
            idle: Mutex::new(()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(cfg.cpus),
            counters: SchedCounters::new(machine),
            workers: Mutex::new(Vec::new()),
        });
        for i in 0..cfg.cpus {
            let weak = Arc::downgrade(&sched);
            machine
                .gauges
                .register(&format!("gauge.sched.runq_depth.cpu{i}"), move || {
                    weak.upgrade()
                        .map_or(0, |s| s.cpus[i].depth.load(Ordering::Relaxed) as u64)
                });
        }
        let weak = Arc::downgrade(&sched);
        machine.gauges.register("gauge.sched.runq_depth", move || {
            weak.upgrade().map_or(0, |s| {
                s.cpus
                    .iter()
                    .map(|c| c.depth.load(Ordering::Relaxed) as u64)
                    .sum()
            })
        });
        let mut workers = sched.workers.lock();
        for i in 0..cfg.cpus {
            let s = Arc::clone(&sched);
            let handle = std::thread::Builder::new()
                .name(format!("sched-cpu{i}"))
                .spawn(move || s.worker(i))
                .expect("spawn scheduler worker");
            workers.push(handle);
        }
        drop(workers);
        sched
    }

    /// Simulated CPU count.
    pub fn cpus(&self) -> usize {
        self.cfg.cpus
    }

    /// The node CPU `cpu` is attached to.
    pub fn node_of(&self, cpu: usize) -> usize {
        self.cpus[cpu].node
    }

    /// Submits a steppable unit under `tag` and returns its join handle.
    ///
    /// Called from a worker, the unit lands on the worker's own queue
    /// (children of a running task stay local until stolen). Called from
    /// outside, placement prefers the tag's last CPU, then the least
    /// loaded CPU of its home node, then the least loaded CPU overall.
    /// After [`Scheduler::shutdown`] the body runs inline on the caller.
    pub fn submit(
        self: &Arc<Self>,
        tag: Arc<TaskTag>,
        body: impl FnMut() -> Run + Send + 'static,
    ) -> JoinHandle {
        let done = Arc::new(DoneState::default());
        let handle = JoinHandle {
            done: Arc::clone(&done),
        };
        let mut body = body;
        if !protocol::accepts_units(self.stop.load(Ordering::Acquire)) {
            while body() != Run::Done {}
            *done.flag.lock() = true;
            done.cv.notify_all();
            return handle;
        }
        let cpu = self.place(&tag);
        let unit = Unit {
            body: Box::new(body),
            tag,
            done,
        };
        self.push(cpu, unit);
        // Serialize with the idle re-check so the push is never missed.
        drop(self.idle.lock());
        self.wake.notify_all();
        handle
    }

    /// Submits a run-to-completion closure for a task homed on
    /// `home_node`.
    pub fn spawn(
        self: &Arc<Self>,
        home_node: usize,
        f: impl FnOnce() + Send + 'static,
    ) -> JoinHandle {
        let mut f = Some(f);
        self.submit(TaskTag::new(home_node), move || {
            if let Some(f) = f.take() {
                f();
            }
            Run::Done
        })
    }

    /// Requests shutdown without blocking: new submissions run inline,
    /// parked workers wake, and each worker drains its local queue and
    /// exits. Idempotent; pair with [`Scheduler::quiesce`] /
    /// [`Scheduler::shutdown`] to wait for the workers.
    pub fn begin_shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Serialize with the idle re-check so the wakeup is never missed.
        drop(self.idle.lock());
        self.wake.notify_all();
    }

    /// Requests shutdown and waits (bounded, real time) for every worker
    /// to finish its current unit and drain its queue. Returns whether
    /// the workers quiesced within `timeout` — `false` means some unit's
    /// body is blocked on something the scheduler cannot unblock (a
    /// fault ticket whose pager never answers), and the caller owns
    /// breaking that wait before joining.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        self.begin_shutdown();
        wall::poll_until(timeout, IDLE_TICK, || {
            self.active.load(Ordering::Acquire) == 0
        })
    }

    /// Stops every worker, draining all queued units first, and joins the
    /// worker threads. Idempotent.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }

    /// Abandons the worker threads without joining them: the teardown
    /// path's last resort when [`Scheduler::quiesce`] timed out even
    /// after the fault engine drained every parked ticket. Leaking a
    /// wedged thread beats wedging the whole process exit.
    pub fn detach_workers(&self) {
        self.begin_shutdown();
        drop(std::mem::take(&mut *self.workers.lock()));
    }

    /// Picks the queue a non-worker submission should land on.
    fn place(&self, tag: &TaskTag) -> usize {
        if let Some(cpu) = current_cpu() {
            return cpu;
        }
        let last = tag.last_cpu.load(Ordering::Relaxed);
        if last < self.cpus.len() {
            return last;
        }
        let depth_of = |i: usize| self.cpus[i].depth.load(Ordering::Relaxed);
        let home = (0..self.cpus.len())
            .filter(|&i| self.cpus[i].node == tag.home_node)
            .min_by_key(|&i| depth_of(i));
        home.unwrap_or_else(|| {
            (0..self.cpus.len())
                .min_by_key(|&i| depth_of(i))
                .expect("at least one cpu")
        })
    }

    fn push(&self, cpu: usize, unit: Unit) {
        let c = &self.cpus[cpu];
        let mut q = c.rq.lock();
        q.push_back(unit);
        c.depth.store(q.len(), Ordering::Relaxed);
    }

    fn take_local(&self, cpu: usize) -> Option<Unit> {
        let c = &self.cpus[cpu];
        if c.depth.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut q = c.rq.lock();
        let unit = q.pop_front();
        c.depth.store(q.len(), Ordering::Relaxed);
        unit
    }

    /// Takes up to half of `victim`'s queue (capped) from the back.
    fn take_from(&self, victim: usize) -> VecDeque<Unit> {
        let c = &self.cpus[victim];
        let mut q = c.rq.lock();
        let take = q.len().div_ceil(2).min(STEAL_CAP);
        let mut batch = VecDeque::with_capacity(take);
        for _ in 0..take {
            if let Some(u) = q.pop_back() {
                batch.push_front(u);
            }
        }
        c.depth.store(q.len(), Ordering::Relaxed);
        batch
    }

    /// Steals from a random victim; returns a unit to dispatch now.
    fn steal(&self, cpu: usize, rng: &mut SplitMix64) -> Option<Unit> {
        let n = self.cpus.len();
        if n <= 1 {
            return None;
        }
        let offset = rng.next_below(n as u64) as usize;
        for k in 0..n {
            let victim = (offset + k) % n;
            if victim == cpu || self.cpus[victim].depth.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let id = self.machine.span_open("sched.steal");
            let mut batch = self.take_from(victim);
            let first = batch.pop_front();
            if first.is_some() {
                self.counters.steals.add(1 + batch.len() as u64);
            }
            let mut surplus = false;
            while let Some(u) = batch.pop_front() {
                self.push(cpu, u);
                surplus = true;
            }
            self.machine.span_close("sched.steal", id);
            if first.is_none() {
                continue;
            }
            if surplus {
                // Other idle CPUs may steal the surplus in turn.
                drop(self.idle.lock());
                self.wake.notify_all();
            }
            return first;
        }
        None
    }

    /// Whether `cpu` could find a unit right now without blocking.
    fn has_work(&self, cpu: usize) -> bool {
        if protocol::queue_nonempty(self.cpus[cpu].depth.load(Ordering::Relaxed)) {
            return true;
        }
        self.cfg.steal
            && self
                .cpus
                .iter()
                .any(|c| protocol::queue_nonempty(c.depth.load(Ordering::Relaxed)))
    }

    /// Runs one unit on `cpu` until it finishes or its slice expires.
    fn dispatch(&self, cpu: usize, mut unit: Unit) {
        let span = self.machine.span_open("sched.dispatch");
        self.counters.dispatches.incr();
        let node = self.cpus[cpu].node;
        let last = unit.tag.last_cpu.load(Ordering::Relaxed);
        if last == NO_CPU {
            // First dispatch: a hit means the placer reached the home node.
            if node == unit.tag.home_node {
                self.counters.affinity_hits.incr();
            } else {
                self.counters.affinity_misses.incr();
            }
        } else if last == cpu {
            self.counters.affinity_hits.incr();
        } else {
            self.counters.migrations.incr();
            if self.cpus[last].node == node {
                self.counters.affinity_hits.incr();
            } else {
                self.counters.affinity_misses.incr();
            }
        }
        unit.tag.last_cpu.store(cpu, Ordering::Relaxed);
        let slice_start = self.machine.clock.now_ns();
        loop {
            match (unit.body)() {
                Run::Done => {
                    unit.finish();
                    break;
                }
                Run::Yield => {
                    let elapsed = self.machine.clock.now_ns().saturating_sub(slice_start);
                    if elapsed >= self.cfg.time_slice_ns {
                        // Context switch: the syscall price, as in Mach's
                        // kernel-entry accounting.
                        self.machine.clock.charge(self.machine.cost.syscall_ns);
                        self.counters.preemptions.incr();
                        self.push(cpu, unit);
                        break;
                    }
                }
            }
        }
        self.machine.span_close("sched.dispatch", span);
    }

    /// The worker loop of one simulated CPU.
    fn worker(self: Arc<Self>, cpu: usize) {
        CURRENT_CPU.with(|c| c.set(cpu));
        if let Some(pin) = self.cfg.pin_node {
            pin(self.cpus[cpu].node);
        }
        let mut rng = SplitMix64::new(
            self.cfg
                .seed
                .wrapping_add((cpu as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        loop {
            if let Some(unit) = self.take_local(cpu) {
                self.dispatch(cpu, unit);
                continue;
            }
            if self.cfg.steal {
                if let Some(unit) = self.steal(cpu, &mut rng) {
                    self.dispatch(cpu, unit);
                    continue;
                }
            }
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let mut guard = self.idle.lock();
            if !protocol::worker_may_park(self.has_work(cpu), self.stop.load(Ordering::Acquire)) {
                continue;
            }
            self.wake.wait_for(&mut guard, IDLE_TICK);
        }
        // Stop was requested: drain whatever is still queued locally so no
        // submitted unit is lost (preempted units re-queue here too).
        loop {
            let unit = self.take_local(cpu);
            if !protocol::drain_after_stop(unit.is_some()) {
                break;
            }
            if let Some(unit) = unit {
                self.dispatch(cpu, unit);
            }
        }
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("cpus", &self.cfg.cpus)
            .field("nodes", &self.cfg.nodes)
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machsim::CostModel;
    use std::sync::atomic::AtomicU64;

    fn machine() -> Machine {
        Machine::new(CostModel::default())
    }

    #[test]
    fn submit_runs_and_joins() {
        let m = machine();
        let sched = Scheduler::start(&m, SchedConfig::default());
        let ran = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&ran);
        let h = sched.spawn(0, move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        h.join();
        assert!(h.is_finished());
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(m.stats.get(keys::SCHED_DISPATCHES), 1);
        sched.shutdown();
    }

    #[test]
    fn local_pile_is_stolen_by_idle_cpus() {
        let m = machine();
        let sched = Scheduler::start(
            &m,
            SchedConfig {
                cpus: 4,
                ..SchedConfig::default()
            },
        );
        let ran = Arc::new(AtomicU64::new(0));
        let children = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&sched);
        let (r, kids, mach) = (Arc::clone(&ran), Arc::clone(&children), m.clone());
        // The "make" unit spawns all children from inside one worker, so
        // they pile onto that worker's queue and must be stolen to spread.
        sched
            .spawn(0, move || {
                for _ in 0..256 {
                    let r = Arc::clone(&r);
                    let mach = mach.clone();
                    kids.lock().push(s.spawn(0, move || {
                        mach.clock.charge(50_000);
                        r.fetch_add(1, Ordering::Relaxed);
                    }));
                }
            })
            .join();
        for h in children.lock().drain(..) {
            h.join();
        }
        assert_eq!(ran.load(Ordering::Relaxed), 256);
        assert_eq!(m.stats.get(keys::SCHED_DISPATCHES), 257);
        assert!(
            m.stats.get(keys::SCHED_STEALS) > 0,
            "idle CPUs should have stolen from the pile"
        );
        sched.shutdown();
    }

    #[test]
    fn slice_expiry_preempts_and_requeues() {
        let m = machine();
        let sched = Scheduler::start(
            &m,
            SchedConfig {
                cpus: 1,
                time_slice_ns: 1_000,
                steal: false,
                ..SchedConfig::default()
            },
        );
        let mut steps = 0;
        let mach = m.clone();
        let h = sched.submit(TaskTag::new(0), move || {
            mach.clock.charge(1_000_000);
            steps += 1;
            if steps < 8 {
                Run::Yield
            } else {
                Run::Done
            }
        });
        h.join();
        assert!(m.stats.get(keys::SCHED_PREEMPTIONS) >= 1);
        assert!(m.stats.get(keys::SCHED_DISPATCHES) >= 2);
        sched.shutdown();
    }

    #[test]
    fn external_placement_prefers_home_node() {
        let m = machine();
        let sched = Scheduler::start(
            &m,
            SchedConfig {
                cpus: 4,
                nodes: 2,
                steal: false,
                ..SchedConfig::default()
            },
        );
        assert_eq!(sched.node_of(0), 0);
        assert_eq!(sched.node_of(3), 1);
        let tag = TaskTag::new(1);
        sched.submit(Arc::clone(&tag), || Run::Done).join();
        let cpu = tag.last_cpu().expect("ran somewhere");
        assert_eq!(sched.node_of(cpu), 1, "homed on node 1, ran on {cpu}");
        assert_eq!(m.stats.get(keys::SCHED_AFFINITY_HITS), 1);
        sched.shutdown();
    }

    #[test]
    fn post_shutdown_submit_runs_inline() {
        let m = machine();
        let sched = Scheduler::start(&m, SchedConfig::default());
        sched.shutdown();
        let ran = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&ran);
        let h = sched.spawn(0, move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        assert!(h.is_finished());
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }
}
