//! The scheduler's push→touch→notify idle-parking and shutdown-drain
//! protocol, distilled into the predicates both the production worker
//! loop and the machmc `sched_shutdown` model call, so model and kernel
//! cannot silently diverge.

/// Whether a per-CPU queue's lock-free depth mirror shows work. The
/// mirror is only a hint (the queue lock is the truth), but the
/// park-side re-check below reads it under the idle lock, which every
/// submitter's empty `idle` critical section serializes with.
#[must_use]
pub fn queue_nonempty(depth: usize) -> bool {
    depth > 0
}

/// Whether an idle worker may park on the wake condvar: only if, re-
/// checked *under the idle lock*, there is still no visible work and no
/// stop request. A submitter pushes, then bridges through the idle lock
/// (`drop(idle.lock())`), then notifies — so its push can never land
/// between this re-check and the wait's atomic release-and-sleep, the
/// lost-wakeup window machmc's `sched_shutdown` model checks.
#[must_use]
pub fn worker_may_park(has_work: bool, stop: bool) -> bool {
    !has_work && !stop
}

/// Whether a submission may be queued at all: after stop, queues are
/// draining and the submitter must run the unit inline instead (no unit
/// is ever lost, merely displaced onto the caller).
#[must_use]
pub fn accepts_units(stop: bool) -> bool {
    !stop
}

/// Whether a worker that observed stop must keep draining its local
/// queue before exiting: as long as the queue still yields units.
/// Submissions racing the stop flag either saw it (ran inline) or
/// pushed before the workers' final drain — either way every unit runs.
#[must_use]
pub fn drain_after_stop(local_has_units: bool) -> bool {
    local_has_units
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn park_needs_quiet_and_live() {
        assert!(worker_may_park(false, false));
        assert!(!worker_may_park(true, false));
        assert!(!worker_may_park(false, true));
    }

    #[test]
    fn depth_mirror_and_drain() {
        assert!(!queue_nonempty(0));
        assert!(queue_nonempty(3));
        assert!(accepts_units(false));
        assert!(!accepts_units(true));
        assert!(drain_after_stop(true));
        assert!(!drain_after_stop(false));
    }
}
