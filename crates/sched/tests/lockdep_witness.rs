//! Runtime lock-order witness for the scheduler's rank: the RunQueue
//! class was added as the outermost rank of the hierarchy, and this test
//! pins the claim dynamically — task bodies that take the fault-engine's
//! table class under a held run-queue-class lock are order-checked by
//! the witness with zero violations, and the inverted order panics.
//!
//! Runs only under `--features lockdep` (scripts/check.sh and CI do);
//! without the feature the witness is compiled out and this file is too.
#![cfg(feature = "lockdep")]

use machsched::{SchedConfig, Scheduler};
use machsim::lockdep::{self, ClassMutex, LockClass};
use machsim::{CostModel, Machine};
use std::sync::Arc;

#[test]
fn witness_sees_runqueue_faulttable_nesting_with_zero_violations() {
    let machine = Machine::new(CostModel::default());
    let sched = Scheduler::start(
        &machine,
        SchedConfig {
            cpus: 4,
            nodes: 2,
            ..SchedConfig::default()
        },
    );

    // The declared order: run-queue strictly before fault-table. Every
    // dispatched body nests the pair the legal way; a violation anywhere
    // panics the worker and fails the join below.
    let rq_class = Arc::new(ClassMutex::new(LockClass::RunQueue, ()));
    let ft_class = Arc::new(ClassMutex::new(LockClass::FaultTable, ()));

    let before = lockdep::nested_acquisitions();
    let handles: Vec<_> = (0..64)
        .map(|i| {
            let rq = rq_class.clone();
            let ft = ft_class.clone();
            sched.spawn(i % 2, move || {
                let outer = rq.lock();
                let inner = ft.lock();
                drop(inner);
                drop(outer);
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    sched.shutdown();

    let nested = lockdep::nested_acquisitions() - before;
    assert!(
        nested >= 64,
        "witness order-checked only {nested} nested acquisitions; \
         the run-queue→fault-table pairs never reached it"
    );
}

#[test]
#[should_panic(expected = "lockdep")]
fn witness_rejects_the_inverted_order() {
    // fault-table then run-queue is the inversion the hierarchy forbids
    // (rank 1 held while acquiring rank 0).
    let ft = ClassMutex::new(LockClass::FaultTable, ());
    let rq = ClassMutex::new(LockClass::RunQueue, ());
    let outer = ft.lock();
    let _inner = rq.lock();
    drop(outer);
}
