//! The minimal filesystem data manager of Section 4.1.
//!
//! "An example of a service which minimally uses the Mach external
//! interface is a filesystem server which provides read-whole-file /
//! write-whole-file functionality." A client's `fs_read_file` returns *new
//! virtual memory*: the server creates a memory object for the file and
//! the client maps it copy-on-write, so "other applications will
//! consistently see the original file contents while the random changes
//! are being made."
//!
//! Beyond the paper's minimal example, the server also supports shared
//! read/write mappings (`open_mapped`) and sync — the building blocks the
//! Section 8.1 UNIX emulation needs — and advises `pager_cache` so file
//! pages stay in the VM cache between opens. That advice is the entire
//! mechanism behind Section 9's performance claims.

use machcore::{spawn_manager, DataManager, KernelConn, ManagerHandle, Task};
use machipc::{IpcError, Message, MsgItem, OolBuffer, ReceiveRight, SendRight};
use machsim::{EventKind, Machine};
use machstorage::FlatFs;
use machvm::{VmError, VmProt};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// `fs_read_file`: request a copy-on-write mapping of a whole file.
pub const FS_READ_FILE: u32 = 0x4101;
/// `fs_write_file`: replace (a prefix of) a file's contents.
pub const FS_WRITE_FILE: u32 = 0x4102;
/// Create an empty file.
pub const FS_CREATE: u32 = 0x4103;
/// Open a file for shared mapped access; returns the memory object.
pub const FS_OPEN_MAPPED: u32 = 0x4104;
/// Force cached modifications of a file back to the server.
pub const FS_SYNC: u32 = 0x4105;
/// Query a file's size.
pub const FS_STAT: u32 = 0x4106;
/// Shut the server down.
pub const FS_SHUTDOWN: u32 = 0x41FF;
/// Generic success reply.
pub const FS_OK: u32 = 0x4180;
/// Generic failure reply.
pub const FS_ERR: u32 = 0x4181;

/// Shared per-file state between the server loop and the file's pager.
struct FileState {
    /// Kernel connections that mapped this file, with the object id each
    /// kernel assigned.
    conns: Vec<(KernelConn, u64)>,
    /// File size when the memory object was created.
    size: u64,
}

/// The pager serving one file's memory object.
struct FilePager {
    fs: Arc<FlatFs>,
    name: String,
    state: Arc<Mutex<FileState>>,
}

impl DataManager for FilePager {
    fn init(&mut self, kernel: &KernelConn, object: u64) {
        // Keep file pages cached after the last unmap: this is the "bulk
        // of physical memory as a cache of secondary storage" behaviour.
        kernel.cache(object, true);
        self.state.lock().conns.push((kernel.clone(), object));
    }

    fn data_request(
        &mut self,
        kernel: &KernelConn,
        object: u64,
        offset: u64,
        length: u64,
        _access: VmProt,
    ) {
        let size = self.fs.size(&self.name).unwrap_or(0) as u64;
        if offset >= size {
            // Beyond EOF: zero-filled.
            kernel
                .machine()
                .trace_event("pager.fs", EventKind::Mark("fs_eof_unavailable"));
            kernel.data_unavailable(object, offset, length);
            return;
        }
        // Read whole pages; the tail past EOF is zero-padded.
        kernel
            .machine()
            .trace_event("pager.fs", EventKind::Mark("fs_file_read"));
        let mut data = vec![0u8; length as usize];
        let n = ((size - offset) as usize).min(length as usize);
        if self
            .fs
            .read(&self.name, offset as usize, &mut data[..n])
            .is_err()
        {
            kernel.data_unavailable(object, offset, length);
            return;
        }
        kernel.data_provided(object, offset, OolBuffer::from_vec(data), VmProt::NONE);
    }

    fn data_write(&mut self, kernel: &KernelConn, object: u64, offset: u64, data: OolBuffer) {
        // Writes from shared mappings come home here; clamp to file size
        // so the zero tail of the last page does not extend the file.
        let size = self.fs.size(&self.name).unwrap_or(0);
        let end = (offset as usize + data.len()).min(size.max(offset as usize + data.len()));
        let n = end - offset as usize;
        let _ = self
            .fs
            .write(&self.name, offset as usize, &data.as_slice()[..n]);
        kernel.release_laundry(object, data.len() as u64);
    }

    fn kernel_detached(&mut self, _port: u64) {
        // §4.1 port_death: release per-kernel resources.
        self.state.lock().conns.clear();
    }
}

/// The filesystem server task.
pub struct FileServer {
    machine: Machine,
    fs: Arc<FlatFs>,
    port: SendRight,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl fmt::Debug for FileServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FileServer({:?})", self.fs)
    }
}

struct ServerState {
    fs: Arc<FlatFs>,
    machine: Machine,
    /// Memory object (pager) per open file.
    pagers: HashMap<String, (ManagerHandle, Arc<Mutex<FileState>>)>,
}

impl ServerState {
    fn pager_for(&mut self, name: &str) -> Result<(SendRight, u64), String> {
        let size = self.fs.size(name).map_err(|e| e.to_string())? as u64;
        if let Some((handle, state)) = self.pagers.get(name) {
            return Ok((handle.port().clone(), state.lock().size.max(size)));
        }
        let state = Arc::new(Mutex::new(FileState {
            conns: Vec::new(),
            size,
        }));
        let pager = FilePager {
            fs: self.fs.clone(),
            name: name.to_string(),
            state: state.clone(),
        };
        let handle = spawn_manager(&self.machine, &format!("fs-{name}"), pager);
        let port = handle.port().clone();
        self.pagers.insert(name.to_string(), (handle, state));
        Ok((port, size))
    }
}

fn name_of(msg: &Message) -> Option<String> {
    msg.body
        .iter()
        .find_map(|i| i.as_bytes())
        .map(|b| String::from_utf8_lossy(b).to_string())
}

fn reply_to(msg: &Message, reply: Message) {
    if let Some(r) = &msg.reply {
        let _ = r.send(reply, Some(Duration::from_secs(5)));
    }
}

impl FileServer {
    /// Starts a filesystem server over `fs`.
    pub fn start(machine: &Machine, fs: Arc<FlatFs>) -> Arc<FileServer> {
        let (rx, tx) = ReceiveRight::allocate(machine);
        rx.set_backlog(1024);
        let mut state = ServerState {
            fs: fs.clone(),
            machine: machine.clone(),
            pagers: HashMap::new(),
        };
        let thread = std::thread::Builder::new()
            .name("file-server".into())
            .spawn(move || loop {
                let Ok(msg) = rx.receive(None) else { break };
                match msg.id {
                    FS_CREATE => {
                        let ok = name_of(&msg)
                            .map(|n| state.fs.create(&n).is_ok())
                            .unwrap_or(false);
                        reply_to(&msg, Message::new(if ok { FS_OK } else { FS_ERR }));
                    }
                    FS_READ_FILE | FS_OPEN_MAPPED => {
                        let result = name_of(&msg)
                            .ok_or_else(|| "bad name".to_string())
                            .and_then(|n| state.pager_for(&n));
                        match result {
                            Ok((port, size)) => reply_to(
                                &msg,
                                Message::new(FS_OK)
                                    .with(MsgItem::u64s(&[size]))
                                    .with(MsgItem::SendRights(vec![port])),
                            ),
                            Err(_) => reply_to(&msg, Message::new(FS_ERR)),
                        }
                    }
                    FS_WRITE_FILE => {
                        let ok = match (name_of(&msg), msg.body.iter().find_map(|i| i.as_ool())) {
                            (Some(n), Some(data)) => {
                                state.fs.exists(&n)
                                    && state.fs.write(&n, 0, data.as_slice()).is_ok()
                            }
                            _ => false,
                        };
                        reply_to(&msg, Message::new(if ok { FS_OK } else { FS_ERR }));
                    }
                    FS_SYNC => {
                        if let Some(n) = name_of(&msg) {
                            if let Some((_, fstate)) = state.pagers.get(&n) {
                                let fstate = fstate.lock();
                                for (conn, object) in fstate.conns.iter() {
                                    conn.clean_request(*object, 0, u64::MAX / 2);
                                }
                            }
                        }
                        reply_to(&msg, Message::new(FS_OK));
                    }
                    FS_STAT => match name_of(&msg).and_then(|n| state.fs.size(&n).ok()) {
                        Some(size) => reply_to(
                            &msg,
                            Message::new(FS_OK).with(MsgItem::u64s(&[size as u64])),
                        ),
                        None => reply_to(&msg, Message::new(FS_ERR)),
                    },
                    FS_SHUTDOWN => break,
                    _ => reply_to(&msg, Message::new(FS_ERR)),
                }
            })
            .expect("spawn file server");
        Arc::new(FileServer {
            machine: machine.clone(),
            fs,
            port: tx,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// The server's request port.
    pub fn port(&self) -> &SendRight {
        &self.port
    }

    /// The backing filesystem (for tests and tooling).
    pub fn fs(&self) -> &Arc<FlatFs> {
        &self.fs
    }

    /// The machine the server runs on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

impl Drop for FileServer {
    fn drop(&mut self) {
        self.port.send_notification(Message::new(FS_SHUTDOWN));
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

/// Client-side errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsClientError {
    /// The RPC failed.
    Ipc(IpcError),
    /// The server reported failure.
    Server,
    /// Mapping the returned object failed.
    Vm(VmError),
}

impl fmt::Display for FsClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsClientError::Ipc(e) => write!(f, "rpc failed: {e}"),
            FsClientError::Server => f.write_str("server error"),
            FsClientError::Vm(e) => write!(f, "mapping failed: {e}"),
        }
    }
}

impl std::error::Error for FsClientError {}

impl From<IpcError> for FsClientError {
    fn from(e: IpcError) -> Self {
        FsClientError::Ipc(e)
    }
}

impl From<VmError> for FsClientError {
    fn from(e: VmError) -> Self {
        FsClientError::Vm(e)
    }
}

/// Client library for the filesystem server (the `fs_read_file` /
/// `fs_write_file` calls of Section 4.1).
pub struct FsClient {
    server: SendRight,
}

impl FsClient {
    /// Binds a client to a server port.
    pub fn new(server: SendRight) -> Self {
        Self { server }
    }

    fn rpc(&self, msg: Message) -> Result<Message, FsClientError> {
        let reply = self.server.rpc(
            msg,
            Some(Duration::from_secs(10)),
            Some(Duration::from_secs(10)),
        )?;
        if reply.id == FS_OK {
            Ok(reply)
        } else {
            Err(FsClientError::Server)
        }
    }

    /// Creates an empty file.
    pub fn create(&self, name: &str) -> Result<(), FsClientError> {
        self.rpc(Message::new(FS_CREATE).with(MsgItem::bytes(name.as_bytes().to_vec())))?;
        Ok(())
    }

    /// `fs_read_file`: maps the file copy-on-write into `task`; returns
    /// `(address, size)`. "This memory is copy-on-write in the
    /// application's address space."
    pub fn read_file(&self, task: &Task, name: &str) -> Result<(u64, u64), FsClientError> {
        let reply =
            self.rpc(Message::new(FS_READ_FILE).with(MsgItem::bytes(name.as_bytes().to_vec())))?;
        let size = reply.body[0].as_u64s().ok_or(FsClientError::Server)?[0];
        let MsgItem::SendRights(rights) = &reply.body[1] else {
            return Err(FsClientError::Server);
        };
        let map_size = size.max(1);
        let addr = task.map_object_copy(None, map_size, &rights[0], 0)?;
        Ok((addr, size))
    }

    /// Maps the file shared read/write into `task` (writes flow back to
    /// the file via `pager_data_write`); returns `(address, size)`.
    pub fn open_mapped(&self, task: &Task, name: &str) -> Result<(u64, u64), FsClientError> {
        let reply =
            self.rpc(Message::new(FS_OPEN_MAPPED).with(MsgItem::bytes(name.as_bytes().to_vec())))?;
        let size = reply.body[0].as_u64s().ok_or(FsClientError::Server)?[0];
        let MsgItem::SendRights(rights) = &reply.body[1] else {
            return Err(FsClientError::Server);
        };
        let map_size = size.max(1);
        let addr = task.vm_allocate_with_pager(None, map_size, &rights[0], 0)?;
        Ok((addr, size))
    }

    /// `fs_write_file`: replaces the file's prefix with `data`.
    pub fn write_file(&self, name: &str, data: &[u8]) -> Result<(), FsClientError> {
        self.rpc(
            Message::new(FS_WRITE_FILE)
                .with(MsgItem::bytes(name.as_bytes().to_vec()))
                .with(MsgItem::OutOfLine(OolBuffer::from_slice(data))),
        )?;
        Ok(())
    }

    /// Flushes cached modifications of the file back to the server.
    pub fn sync(&self, name: &str) -> Result<(), FsClientError> {
        self.rpc(Message::new(FS_SYNC).with(MsgItem::bytes(name.as_bytes().to_vec())))?;
        Ok(())
    }

    /// Returns the file's current size.
    pub fn stat(&self, name: &str) -> Result<u64, FsClientError> {
        let reply =
            self.rpc(Message::new(FS_STAT).with(MsgItem::bytes(name.as_bytes().to_vec())))?;
        Ok(reply.body[0].as_u64s().ok_or(FsClientError::Server)?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machcore::{Kernel, KernelConfig};
    use machstorage::BlockDevice;

    fn setup() -> (Arc<Kernel>, Arc<FileServer>, FsClient) {
        let k = Kernel::boot(KernelConfig::default());
        let dev = Arc::new(BlockDevice::new(k.machine(), 256));
        let fs = Arc::new(FlatFs::format(dev, 0));
        let server = FileServer::start(k.machine(), fs);
        let client = FsClient::new(server.port().clone());
        (k, server, client)
    }

    #[test]
    fn read_whole_file_through_mapping() {
        let (k, server, client) = setup();
        server.fs().create("hello.txt").unwrap();
        server
            .fs()
            .write("hello.txt", 0, b"hello mapped world")
            .unwrap();
        let task = Task::create(&k, "app");
        let (addr, size) = client.read_file(&task, "hello.txt").unwrap();
        assert_eq!(size, 18);
        let mut buf = vec![0u8; size as usize];
        task.read_memory(addr, &mut buf).unwrap();
        assert_eq!(&buf, b"hello mapped world");
    }

    #[test]
    fn cow_read_gives_consistent_view_to_others() {
        // The §4.1 scenario: one client randomly mutates its copy while
        // another consistently sees the original contents.
        let (k, server, client) = setup();
        server.fs().create("f").unwrap();
        server.fs().write("f", 0, &vec![7u8; 8192]).unwrap();
        let mutator = Task::create(&k, "mutator");
        let reader = Task::create(&k, "reader");
        let (maddr, _) = client.read_file(&mutator, "f").unwrap();
        mutator.write_memory(maddr + 100, &[0xFF; 32]).unwrap();
        let (raddr, _) = client.read_file(&reader, "f").unwrap();
        let mut b = [0u8; 32];
        reader.read_memory(raddr + 100, &mut b).unwrap();
        assert_eq!(b, [7u8; 32], "reader sees original file contents");
        // And the file itself is untouched.
        assert_eq!(server.fs().read_all("f").unwrap(), vec![7u8; 8192]);
    }

    #[test]
    fn explicit_write_back() {
        let (k, server, client) = setup();
        client.create("out").unwrap();
        client.write_file("out", b"stored via message").unwrap();
        assert_eq!(server.fs().read_all("out").unwrap(), b"stored via message");
        // Round-trip through a fresh mapping.
        let task = Task::create(&k, "t");
        let (addr, size) = client.read_file(&task, "out").unwrap();
        let mut buf = vec![0u8; size as usize];
        task.read_memory(addr, &mut buf).unwrap();
        assert_eq!(&buf, b"stored via message");
    }

    #[test]
    fn second_open_hits_vm_cache() {
        let (k, server, client) = setup();
        server.fs().create("hot").unwrap();
        server.fs().write("hot", 0, &vec![1u8; 16384]).unwrap();
        let t1 = Task::create(&k, "t1");
        let (a1, s1) = client.read_file(&t1, "hot").unwrap();
        let mut buf = vec![0u8; s1 as usize];
        t1.read_memory(a1, &mut buf).unwrap();
        let disk_reads_after_first = k.machine().stats.get(machsim::stats::keys::DISK_READS);
        t1.vm_deallocate(a1, s1).unwrap();
        // A different task re-reads: all pages must come from the cache.
        let t2 = Task::create(&k, "t2");
        let (a2, s2) = client.read_file(&t2, "hot").unwrap();
        t2.read_memory(a2, &mut buf).unwrap();
        assert_eq!(s2, s1);
        assert!(buf.iter().all(|&b| b == 1));
        assert_eq!(
            k.machine().stats.get(machsim::stats::keys::DISK_READS),
            disk_reads_after_first,
            "no disk I/O on the warm open"
        );
    }

    #[test]
    fn shared_mapping_writes_reach_the_file_on_sync() {
        let (k, server, client) = setup();
        server.fs().create("db").unwrap();
        server.fs().write("db", 0, &vec![0u8; 4096]).unwrap();
        let task = Task::create(&k, "writer");
        let (addr, _) = client.open_mapped(&task, "db").unwrap();
        task.write_memory(addr, b"dirty page").unwrap();
        client.sync("db").unwrap();
        // The sync triggers a clean_request -> pager_data_write chain.
        machsim::wall::sleep(Duration::from_millis(200));
        let contents = server.fs().read_all("db").unwrap();
        assert_eq!(&contents[..10], b"dirty page");
    }

    #[test]
    fn missing_file_reports_server_error() {
        let (k, _server, client) = setup();
        let task = Task::create(&k, "t");
        assert_eq!(
            client.read_file(&task, "nope").unwrap_err(),
            FsClientError::Server
        );
        assert_eq!(client.stat("nope").unwrap_err(), FsClientError::Server);
    }

    #[test]
    fn stat_matches_size() {
        let (_k, server, client) = setup();
        server.fs().create("s").unwrap();
        server.fs().write("s", 0, &vec![0u8; 1234]).unwrap();
        assert_eq!(client.stat("s").unwrap(), 1234);
    }
}
