#![warn(missing_docs)]

//! External data managers: the applications of Sections 4, 6 and 8.
//!
//! Every module here is an ordinary user-level task speaking the external
//! memory management protocol to one or more kernels:
//!
//! * [`fs`] — the minimal read/copy-on-write filesystem server (§4.1);
//! * [`netshm`] — the consistent network shared memory service (§4.2),
//!   single-writer/multiple-reader coherence in the style of Li–Hudak;
//! * [`camelot`] — a Camelot-style recoverable-object disk manager with
//!   write-ahead logging (§8.3);
//! * [`migrate`] — copy-on-reference task migration (§8.2);
//! * [`mod@array`] — a shared-array service demonstrating the §9 claim that
//!   clients get cached data with a single message;
//! * [`agora`] — a hybrid blackboard (§8.4): tightly coupled agents use
//!   shared memory, loosely coupled ones use messages;
//! * [`remote_region`] — copy-on-reference out-of-line message data across
//!   the network (§7);
//! * [`hostile`] — deliberately broken managers reproducing the failure
//!   modes of §6.1 for the failure-handling experiments.

pub mod agora;
pub mod array;
pub mod camelot;
pub mod fs;
pub mod hostile;
pub mod migrate;
pub mod netshm;
pub mod remote_region;

pub use agora::{Agent, Blackboard};
pub use array::ArrayService;
pub use camelot::{CamelotClient, CamelotServer};
pub use fs::{FileServer, FsClient, FsClientError};
pub use migrate::{MigrationManager, MigrationStrategy};
pub use netshm::{GrantPolicy, SharedMemoryServer, ShmDirectory};
