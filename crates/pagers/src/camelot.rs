//! A Camelot-style recoverable-object disk manager (Section 8.3).
//!
//! "In Camelot, servers maintain permanent objects in virtual memory backed
//! by the Camelot disk manager. Camelot uses the write-ahead logging
//! technique to implement permanent, failure-atomic transactions. When the
//! disk manager receives a pager_flush_request from the kernel, it
//! verifies that the proper log records have been written before writing
//! the specified pages to disk."
//!
//! Clients map a *recoverable segment* into their address space and access
//! it as ordinary memory; Mach manages the physical cache while this disk
//! manager guarantees write-ahead ordering. The transaction interface
//! (begin / log-update / commit / abort) runs over the server's RPC port,
//! and [`CamelotServer::recover`] replays the durable log after a crash —
//! redoing committed transactions, undoing uncommitted ones.
//!
//! The paper's listed benefits are all observable here: clients do not
//! implement page replacement, they need no fixed-size buffers, and
//! "recoverable data can be written directly to permanent backing storage
//! without first being written to temporary paging storage" — the
//! experiment asserts the default pager's partition stays cold.

use machcore::{spawn_manager, DataManager, KernelConn, ManagerHandle, Task};
use machipc::{IpcError, Message, MsgItem, OolBuffer, ReceiveRight, SendRight};
use machsim::Machine;
use machstorage::{BlockDevice, FlatFs, LogRecord, WriteAheadLog};
use machvm::{VmError, VmProt};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

#[cfg(test)]
const PAGE: usize = 4096;
const SEGMENT_FILE: &str = "recoverable-segment";

/// RPC: attach to the recoverable segment (reply: size + object port).
pub const TX_ATTACH: u32 = 0x4701;
/// RPC: begin a transaction (reply: txid).
pub const TX_BEGIN: u32 = 0x4702;
/// RPC: log an update (txid, offset, before, after).
pub const TX_LOG: u32 = 0x4703;
/// RPC: commit (forces the log).
pub const TX_COMMIT: u32 = 0x4704;
/// RPC: abort.
pub const TX_ABORT: u32 = 0x4705;
/// Generic success reply.
pub const TX_OK: u32 = 0x4780;
/// Generic failure reply.
pub const TX_ERR: u32 = 0x4781;
const TX_SHUTDOWN: u32 = 0x47FF;

/// Shared state between the pager and the transaction server.
struct DiskManagerState {
    wal: WriteAheadLog,
    db: Arc<FlatFs>,
    next_txid: u64,
    /// Transactions begun but neither committed nor aborted.
    active: std::collections::HashSet<u64>,
    /// Statistics: how many times the WAL was forced before page data.
    forced_before_data: u64,
    /// Statistics: checkpoints taken.
    checkpoints: u64,
}

impl DiskManagerState {
    /// The §8.3 invariant: force the log, then write the page.
    fn write_page_with_wal_ordering(&mut self, offset: u64, data: &[u8]) {
        if self.wal.pending_len() > 0 {
            self.wal.force().expect("log force");
            self.forced_before_data += 1;
        }
        let _ = self.db.write(SEGMENT_FILE, offset as usize, data);
    }

    /// Checkpoint: when no transaction is active and the log is running
    /// out of room, apply every committed update to the database (redo is
    /// idempotent) and truncate the log. Recovery from an empty log plus
    /// the checkpointed database is trivially consistent.
    fn maybe_checkpoint(&mut self) {
        if !self.active.is_empty() {
            return;
        }
        if self.wal.durable_len() + self.wal.pending_len() < self.wal.capacity() / 2 {
            return;
        }
        let _ = self.wal.force();
        let Ok(records) = self.wal.recover() else {
            return;
        };
        let committed: std::collections::HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                LogRecord::Commit { txid } => Some(*txid),
                _ => None,
            })
            .collect();
        for rec in &records {
            if let LogRecord::Update {
                txid,
                offset,
                after,
                ..
            } = rec
            {
                if committed.contains(txid) {
                    let _ = self.db.write(SEGMENT_FILE, *offset as usize, after);
                }
            }
        }
        self.wal.reset();
        self.checkpoints += 1;
    }
}

/// The pager half: serves the recoverable segment.
struct RecoverablePager {
    state: Arc<Mutex<DiskManagerState>>,
}

impl DataManager for RecoverablePager {
    fn data_request(
        &mut self,
        kernel: &KernelConn,
        object: u64,
        offset: u64,
        length: u64,
        _access: VmProt,
    ) {
        let state = self.state.lock();
        let size = state.db.size(SEGMENT_FILE).unwrap_or(0);
        let mut data = vec![0u8; length as usize];
        let n = (size.saturating_sub(offset as usize)).min(length as usize);
        if n > 0 {
            let _ = state.db.read(SEGMENT_FILE, offset as usize, &mut data[..n]);
        }
        drop(state);
        kernel.data_provided(object, offset, OolBuffer::from_vec(data), VmProt::NONE);
    }

    fn data_write(&mut self, kernel: &KernelConn, object: u64, offset: u64, data: OolBuffer) {
        // Write-ahead discipline: log records first, then the data pages.
        self.state
            .lock()
            .write_page_with_wal_ordering(offset, data.as_slice());
        kernel.release_laundry(object, data.len() as u64);
    }
}

/// The Camelot disk manager: recoverable segment + WAL + transactions.
pub struct CamelotServer {
    state: Arc<Mutex<DiskManagerState>>,
    service_port: SendRight,
    _pager: ManagerHandle,
    segment_size: u64,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl fmt::Debug for CamelotServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CamelotServer({} bytes)", self.segment_size)
    }
}

/// How the device is split between log and database.
const LOG_BLOCKS: usize = 64;

impl CamelotServer {
    /// Formats `dev` (log + database) and starts the disk manager.
    pub fn format_and_start(
        machine: &Machine,
        dev: Arc<BlockDevice>,
        segment_size: u64,
    ) -> Arc<CamelotServer> {
        let wal = WriteAheadLog::format(dev.clone(), 0, LOG_BLOCKS);
        let db = Arc::new(FlatFs::format(dev, LOG_BLOCKS));
        db.create(SEGMENT_FILE).expect("fresh database");
        db.truncate(SEGMENT_FILE, segment_size as usize)
            .expect("segment fits device");
        Self::start(machine, wal, db, segment_size)
    }

    fn start(
        machine: &Machine,
        wal: WriteAheadLog,
        db: Arc<FlatFs>,
        segment_size: u64,
    ) -> Arc<CamelotServer> {
        let state = Arc::new(Mutex::new(DiskManagerState {
            wal,
            db,
            next_txid: 1,
            active: std::collections::HashSet::new(),
            forced_before_data: 0,
            checkpoints: 0,
        }));
        let pager = spawn_manager(
            machine,
            "camelot",
            RecoverablePager {
                state: state.clone(),
            },
        );
        let object_port = pager.port().clone();
        let (rx, tx) = ReceiveRight::allocate(machine);
        rx.set_backlog(1024);
        let loop_state = state.clone();
        let thread = std::thread::Builder::new()
            .name("camelot-server".into())
            .spawn(move || loop {
                let Ok(msg) = rx.receive(None) else { break };
                let reply = |m: Message| {
                    if let Some(r) = &msg.reply {
                        let _ = r.send(m, Some(Duration::from_secs(5)));
                    }
                };
                match msg.id {
                    TX_ATTACH => reply(
                        Message::new(TX_OK)
                            .with(MsgItem::u64s(&[segment_size]))
                            .with(MsgItem::SendRights(vec![object_port.clone()])),
                    ),
                    TX_BEGIN => {
                        let mut st = loop_state.lock();
                        let txid = st.next_txid;
                        st.next_txid += 1;
                        st.active.insert(txid);
                        reply(Message::new(TX_OK).with(MsgItem::u64s(&[txid])));
                    }
                    TX_LOG => {
                        let ids = msg.body[0].as_u64s().unwrap_or_default();
                        let before = msg.body[1].as_ool().map(|b| b.as_slice().to_vec());
                        let after = msg.body[2].as_ool().map(|b| b.as_slice().to_vec());
                        match (before, after) {
                            (Some(before), Some(after)) if ids.len() >= 2 => {
                                let rec = LogRecord::Update {
                                    txid: ids[0],
                                    object: 0,
                                    offset: ids[1],
                                    before,
                                    after,
                                };
                                let ok = loop_state.lock().wal.append(&rec).is_ok();
                                reply(Message::new(if ok { TX_OK } else { TX_ERR }));
                            }
                            _ => reply(Message::new(TX_ERR)),
                        }
                    }
                    TX_COMMIT => {
                        let ids = msg.body[0].as_u64s().unwrap_or_default();
                        let mut st = loop_state.lock();
                        let ok = st.wal.append(&LogRecord::Commit { txid: ids[0] }).is_ok()
                            && st.wal.force().is_ok();
                        st.active.remove(&ids[0]);
                        st.maybe_checkpoint();
                        reply(Message::new(if ok { TX_OK } else { TX_ERR }));
                    }
                    TX_ABORT => {
                        let ids = msg.body[0].as_u64s().unwrap_or_default();
                        let mut st = loop_state.lock();
                        let ok = st.wal.append(&LogRecord::Abort { txid: ids[0] }).is_ok();
                        st.active.remove(&ids[0]);
                        st.maybe_checkpoint();
                        reply(Message::new(if ok { TX_OK } else { TX_ERR }));
                    }
                    TX_SHUTDOWN => break,
                    _ => reply(Message::new(TX_ERR)),
                }
            })
            .expect("spawn camelot server");
        Arc::new(CamelotServer {
            state,
            service_port: tx,
            _pager: pager,
            segment_size,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// The transaction RPC port.
    pub fn port(&self) -> &SendRight {
        &self.service_port
    }

    /// How many times the WAL was forced ahead of page data.
    pub fn forced_before_data(&self) -> u64 {
        self.state.lock().forced_before_data
    }

    /// Checkpoints taken (committed redo applied, log truncated).
    pub fn checkpoints(&self) -> u64 {
        self.state.lock().checkpoints
    }

    /// Reads the durable segment contents directly (for assertions).
    pub fn durable_segment(&self) -> Vec<u8> {
        self.state
            .lock()
            .db
            .read_all(SEGMENT_FILE)
            .unwrap_or_default()
    }

    /// Crash recovery: reopens the device and restores the segment to a
    /// transaction-consistent state — committed updates redone, others
    /// undone (in reverse order).
    ///
    /// Returns `(redone, undone)` update counts.
    pub fn recover(dev: Arc<BlockDevice>) -> (usize, usize) {
        let wal = WriteAheadLog::open(dev.clone(), 0, LOG_BLOCKS).expect("reopen log");
        let records = wal.recover().expect("scan log");
        let db = FlatFs::format(dev, LOG_BLOCKS);
        // Formatting rebuilt in-memory metadata over the same blocks; the
        // segment file must be re-described. A production system would
        // persist the fs metadata; re-creating it over the same block list
        // is equivalent for a single-file database.
        let _ = db.create(SEGMENT_FILE);
        let mut committed = std::collections::HashSet::new();
        let mut updates: Vec<(u64, u64, Vec<u8>, Vec<u8>)> = Vec::new();
        for rec in &records {
            match rec {
                LogRecord::Commit { txid } => {
                    committed.insert(*txid);
                }
                LogRecord::Update {
                    txid,
                    offset,
                    before,
                    after,
                    ..
                } => updates.push((*txid, *offset, before.clone(), after.clone())),
                LogRecord::Abort { .. } => {}
            }
        }
        let mut redone = 0;
        let mut undone = 0;
        // Redo committed updates in log order.
        for (txid, offset, _before, after) in &updates {
            if committed.contains(txid) {
                let _ = db.write(SEGMENT_FILE, *offset as usize, after);
                redone += 1;
            }
        }
        // Undo uncommitted updates in reverse log order.
        for (txid, offset, before, _after) in updates.iter().rev() {
            if !committed.contains(txid) {
                let _ = db.write(SEGMENT_FILE, *offset as usize, before);
                undone += 1;
            }
        }
        (redone, undone)
    }

    /// Reads the segment from a raw device after recovery (test helper).
    pub fn read_segment_raw(dev: &Arc<BlockDevice>, size: usize) -> Vec<u8> {
        let db = FlatFs::format(dev.clone(), LOG_BLOCKS);
        let _ = db.create(SEGMENT_FILE);
        let _ = db.truncate(SEGMENT_FILE, size);
        db.read_all(SEGMENT_FILE).unwrap_or_default()
    }
}

impl Drop for CamelotServer {
    fn drop(&mut self) {
        self.service_port
            .send_notification(Message::new(TX_SHUTDOWN));
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

/// Client-side transaction errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxError {
    /// RPC failure.
    Ipc(IpcError),
    /// Server rejected the operation.
    Server,
    /// VM failure while accessing the mapped segment.
    Vm(VmError),
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Ipc(e) => write!(f, "rpc: {e}"),
            TxError::Server => f.write_str("server rejected"),
            TxError::Vm(e) => write!(f, "vm: {e}"),
        }
    }
}

impl std::error::Error for TxError {}

impl From<IpcError> for TxError {
    fn from(e: IpcError) -> Self {
        TxError::Ipc(e)
    }
}

impl From<VmError> for TxError {
    fn from(e: VmError) -> Self {
        TxError::Vm(e)
    }
}

/// A Camelot client: the recoverable segment mapped into a task.
pub struct CamelotClient {
    task: Arc<Task>,
    server: SendRight,
    addr: u64,
    size: u64,
}

impl CamelotClient {
    /// Attaches `task` to the server's recoverable segment.
    ///
    /// "Camelot clients can access data easily and quickly by mapping
    /// memory objects into their virtual address spaces."
    pub fn attach(task: &Arc<Task>, server: &SendRight) -> Result<CamelotClient, TxError> {
        let reply = server.rpc(
            Message::new(TX_ATTACH),
            Some(Duration::from_secs(10)),
            Some(Duration::from_secs(10)),
        )?;
        if reply.id != TX_OK {
            return Err(TxError::Server);
        }
        let size = reply.body[0].as_u64s().ok_or(TxError::Server)?[0];
        let MsgItem::SendRights(rights) = &reply.body[1] else {
            return Err(TxError::Server);
        };
        let addr = task.vm_allocate_with_pager(None, size, &rights[0], 0)?;
        Ok(CamelotClient {
            task: task.clone(),
            server: server.clone(),
            addr,
            size,
        })
    }

    /// Segment size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    fn rpc(&self, msg: Message) -> Result<Message, TxError> {
        let reply = self.server.rpc(
            msg,
            Some(Duration::from_secs(10)),
            Some(Duration::from_secs(10)),
        )?;
        if reply.id == TX_OK {
            Ok(reply)
        } else {
            Err(TxError::Server)
        }
    }

    /// Begins a transaction.
    pub fn begin(&self) -> Result<u64, TxError> {
        let reply = self.rpc(Message::new(TX_BEGIN))?;
        Ok(reply.body[0].as_u64s().ok_or(TxError::Server)?[0])
    }

    /// Transactionally writes `data` at `offset`: logs before/after images
    /// with the server, then updates the mapped memory.
    pub fn write(&self, txid: u64, offset: u64, data: &[u8]) -> Result<(), TxError> {
        let mut before = vec![0u8; data.len()];
        self.task.read_memory(self.addr + offset, &mut before)?;
        self.rpc(
            Message::new(TX_LOG)
                .with(MsgItem::u64s(&[txid, offset]))
                .with(MsgItem::OutOfLine(OolBuffer::from_vec(before)))
                .with(MsgItem::OutOfLine(OolBuffer::from_slice(data))),
        )?;
        self.task.write_memory(self.addr + offset, data)?;
        Ok(())
    }

    /// Reads from the mapped segment.
    pub fn read(&self, offset: u64, out: &mut [u8]) -> Result<(), TxError> {
        self.task.read_memory(self.addr + offset, out)?;
        Ok(())
    }

    /// Commits: the server appends a commit record and forces the log.
    pub fn commit(&self, txid: u64) -> Result<(), TxError> {
        self.rpc(Message::new(TX_COMMIT).with(MsgItem::u64s(&[txid])))?;
        Ok(())
    }

    /// Aborts a transaction.
    pub fn abort(&self, txid: u64) -> Result<(), TxError> {
        self.rpc(Message::new(TX_ABORT).with(MsgItem::u64s(&[txid])))?;
        Ok(())
    }
}

/// Simple bank-account view over a segment: one u64 balance per slot.
pub fn balance_of(segment: &[u8], account: usize) -> u64 {
    let p = account * 8;
    u64::from_le_bytes(segment[p..p + 8].try_into().expect("8 bytes"))
}

/// Encodes a balance for [`CamelotClient::write`].
pub fn encode_balance(v: u64) -> [u8; 8] {
    v.to_le_bytes()
}

/// Keeps the compiler from flagging the unused import in non-test builds.
#[doc(hidden)]
pub fn _touch(_: &HashMap<u64, u64>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use machcore::{Kernel, KernelConfig};

    fn setup(segment: u64) -> (Arc<Kernel>, Arc<BlockDevice>, Arc<CamelotServer>) {
        let k = Kernel::boot(KernelConfig::default());
        let dev = Arc::new(BlockDevice::new(k.machine(), 256));
        let server = CamelotServer::format_and_start(k.machine(), dev.clone(), segment);
        (k, dev, server)
    }

    #[test]
    fn transactional_transfer_commits() {
        let (k, _dev, server) = setup(8 * PAGE as u64);
        let task = Task::create(&k, "bank");
        let client = CamelotClient::attach(&task, server.port()).unwrap();
        // Accounts 0 and 1 start at 0; fund account 0 with 100.
        let tx0 = client.begin().unwrap();
        client.write(tx0, 0, &encode_balance(100)).unwrap();
        client.commit(tx0).unwrap();
        // Transfer 40 from account 0 to 1.
        let tx1 = client.begin().unwrap();
        client.write(tx1, 0, &encode_balance(60)).unwrap();
        client.write(tx1, 8, &encode_balance(40)).unwrap();
        client.commit(tx1).unwrap();
        let mut buf = [0u8; 16];
        client.read(0, &mut buf).unwrap();
        assert_eq!(balance_of(&buf, 0), 60);
        assert_eq!(balance_of(&buf, 1), 40);
    }

    #[test]
    fn wal_forced_before_page_data() {
        let (k, _dev, server) = setup(8 * PAGE as u64);
        let task = Task::create(&k, "bank");
        let client = CamelotClient::attach(&task, server.port()).unwrap();
        let tx = client.begin().unwrap();
        client.write(tx, 0, &encode_balance(7)).unwrap();
        // Do NOT commit; ask the kernel to clean the dirty mapped page by
        // evicting (simulate with an explicit flush through the fs of the
        // kernel: here we just touch enough memory to force pageout).
        // Simpler: deallocate the mapping, which cleans dirty pages.
        drop(client);
        task.vm_deallocate(task.vm_regions()[0].start, task.vm_regions()[0].size)
            .unwrap();
        // The pager received the dirty page and forced the log first.
        for _ in 0..100 {
            if server.forced_before_data() > 0 {
                break;
            }
            machsim::wall::sleep(Duration::from_millis(10));
        }
        assert!(server.forced_before_data() > 0, "log forced before data");
        // The uncommitted update is in the durable segment now, but the
        // log has its before-image; recovery will undo it.
    }

    #[test]
    fn recovery_redoes_committed_and_undoes_uncommitted() {
        let (k, dev, server) = setup(8 * PAGE as u64);
        let task = Task::create(&k, "bank");
        let client = CamelotClient::attach(&task, server.port()).unwrap();
        // Committed transaction: account 0 = 100.
        let tx0 = client.begin().unwrap();
        client.write(tx0, 0, &encode_balance(100)).unwrap();
        client.commit(tx0).unwrap();
        // Uncommitted transaction: account 0 = 1, account 1 = 999.
        let tx1 = client.begin().unwrap();
        client.write(tx1, 0, &encode_balance(1)).unwrap();
        client.write(tx1, 8, &encode_balance(999)).unwrap();
        // Force the in-flight updates into the log (but no commit): a
        // flush of dirty pages triggers the WAL-before-data path, which
        // forces pending records.
        drop(client);
        drop(task);
        drop(server);
        drop(k); // Crash: kernel and server gone; device survives.
        let (redone, undone) = CamelotServer::recover(dev.clone());
        assert!(redone >= 1, "committed update redone");
        assert!(undone >= 2, "uncommitted updates undone");
        let segment = CamelotServer::read_segment_raw(&dev, 8 * PAGE);
        assert_eq!(balance_of(&segment, 0), 100, "committed value restored");
        assert_eq!(balance_of(&segment, 1), 0, "uncommitted value undone");
    }

    #[test]
    fn recoverable_data_bypasses_paging_storage() {
        // "Recoverable data can be written directly to permanent backing
        // storage without first being written to temporary paging
        // storage": evictions of camelot pages go to the camelot pager,
        // never the default pager.
        let (_k, _dev, server) = setup(64 * PAGE as u64);
        let small_kernel = Kernel::boot(KernelConfig {
            memory_bytes: 16 * 4096,
            reserve_pages: 4,
            ..KernelConfig::default()
        });
        let task = Task::create(&small_kernel, "bank");
        // Attach against the server (the server lives on the big kernel's
        // machine but ports are location transparent here).
        let client = CamelotClient::attach(&task, server.port()).unwrap();
        let tx = client.begin().unwrap();
        for page in 0..32u64 {
            client
                .write(tx, page * PAGE as u64, &encode_balance(page))
                .unwrap();
        }
        client.commit(tx).unwrap();
        // Evictions happened on the small kernel; none used its default
        // pager's partition.
        assert!(
            small_kernel
                .machine()
                .stats
                .get(machsim::stats::keys::VM_PAGEOUTS)
                > 0,
            "camelot pages were evicted"
        );
        assert_eq!(
            small_kernel
                .machine()
                .stats
                .get(machsim::stats::keys::DEFAULT_PAGER_PARTITION_FULL),
            0
        );
        assert_eq!(
            small_kernel
                .machine()
                .stats
                .get(machsim::stats::keys::VM_DEFAULT_PAGER_TAKEOVERS),
            0,
            "no pageouts diverted to paging storage"
        );
    }
}
