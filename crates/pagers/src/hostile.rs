//! Deliberately misbehaving data managers (Section 6.1).
//!
//! "While the functionality of external memory management can be a
//! powerful tool in the hands of a careful application, it can also raise
//! several robustness and security problems if improperly used." Each type
//! here reproduces one of the paper's failure modes so the failure-handling
//! experiments (E13) can demonstrate the defenses of Section 6.2:
//!
//! * [`SilentPager`] — "Data manager doesn't return data": threads block;
//!   fault timeouts treat it like a communication failure.
//! * [`SlowPager`] — responds after a delay; distinguishes timeout tuning.
//! * [`HoarderPager`] — "Data manager fails to free flushed data": never
//!   releases laundry; the kernel diverts pageouts to the default pager.
//! * [`ChangingPager`] — "Data manager changes data": supplies different
//!   contents on every refresh.
//! * [`FloodPager`] — "Data manager floods the cache": supplies far more
//!   data than requested.

use machcore::{DataManager, KernelConn};
use machipc::OolBuffer;
use machsim::EventKind;
use machvm::VmProt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Never responds to anything.
#[derive(Default)]
pub struct SilentPager {
    /// Requests observed (so tests can check the request was sent).
    pub requests: Arc<AtomicU64>,
}

impl DataManager for SilentPager {
    fn data_request(&mut self, k: &KernelConn, _o: u64, _off: u64, _l: u64, _a: VmProt) {
        // Leave a trace marker so a hung fault chain shows *where* the
        // request went to die instead of just never resuming.
        k.machine()
            .trace_event("pager.hostile", EventKind::Mark("request_swallowed"));
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    fn data_write(&mut self, _k: &KernelConn, _o: u64, _off: u64, _d: OolBuffer) {
        // Swallow the data and never release the laundry either.
    }
}

/// Responds correctly, but only after a fixed delay.
pub struct SlowPager {
    /// Delay before each response.
    pub delay: Duration,
    /// Fill byte for supplied pages.
    pub fill: u8,
}

impl DataManager for SlowPager {
    fn data_request(
        &mut self,
        kernel: &KernelConn,
        object: u64,
        offset: u64,
        length: u64,
        _a: VmProt,
    ) {
        kernel
            .machine()
            .trace_event("pager.hostile", EventKind::Mark("slow_response"));
        machsim::wall::sleep(self.delay);
        kernel.data_provided(
            object,
            offset,
            OolBuffer::from_vec(vec![self.fill; length as usize]),
            VmProt::NONE,
        );
    }
}

/// Supplies data but never releases written-back pages.
#[derive(Default)]
pub struct HoarderPager {
    /// Bytes of laundry received and hoarded.
    pub hoarded: Arc<AtomicU64>,
}

impl DataManager for HoarderPager {
    fn data_request(
        &mut self,
        kernel: &KernelConn,
        object: u64,
        offset: u64,
        length: u64,
        _a: VmProt,
    ) {
        kernel.data_provided(
            object,
            offset,
            OolBuffer::from_vec(vec![0u8; length as usize]),
            VmProt::NONE,
        );
    }

    fn data_write(&mut self, _kernel: &KernelConn, _object: u64, _offset: u64, data: OolBuffer) {
        // "A data manager may wreak havok with the pageout process by
        // failing to promptly release memory following pageout": keep the
        // buffer, send no release.
        self.hoarded.fetch_add(data.len() as u64, Ordering::Relaxed);
        std::mem::forget(data);
    }
}

/// Supplies different contents every time the same page is requested.
#[derive(Default)]
pub struct ChangingPager {
    counter: u64,
}

impl DataManager for ChangingPager {
    fn data_request(
        &mut self,
        kernel: &KernelConn,
        object: u64,
        offset: u64,
        length: u64,
        _a: VmProt,
    ) {
        self.counter += 1;
        kernel.data_provided(
            object,
            offset,
            OolBuffer::from_vec(vec![self.counter as u8; length as usize]),
            VmProt::NONE,
        );
    }
}

/// Supplies a large burst of pages for every single-page request.
pub struct FloodPager {
    /// Pages supplied per request.
    pub burst_pages: u64,
}

impl DataManager for FloodPager {
    fn data_request(
        &mut self,
        kernel: &KernelConn,
        object: u64,
        offset: u64,
        length: u64,
        _a: VmProt,
    ) {
        let burst = length * self.burst_pages;
        kernel.data_provided(
            object,
            offset,
            OolBuffer::from_vec(vec![0xFF; burst as usize]),
            VmProt::NONE,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machcore::{spawn_manager, Kernel, KernelConfig, Task};
    use machsim::stats::keys;
    use machvm::{FaultPolicy, VmError};
    use std::sync::Arc;

    fn kernel() -> Arc<Kernel> {
        Kernel::boot(KernelConfig::default())
    }

    #[test]
    fn silent_pager_fault_times_out() {
        // §6.2.1: "a timeout period may be specified, after which a memory
        // request is aborted".
        let k = kernel();
        let t = Task::create(&k, "victim");
        t.map()
            .set_fault_policy(FaultPolicy::abort_after(Duration::from_millis(50)));
        let requests = Arc::new(AtomicU64::new(0));
        let mgr = spawn_manager(
            k.machine(),
            "silent",
            SilentPager {
                requests: requests.clone(),
            },
        );
        let addr = t.vm_allocate_with_pager(None, 4096, mgr.port(), 0).unwrap();
        let mut b = [0u8; 1];
        assert_eq!(t.read_memory(addr, &mut b).unwrap_err(), VmError::Timeout);
        assert_eq!(requests.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn silent_pager_can_be_zero_filled_instead() {
        // §6.2.1's other option: "providing (zero-filled) memory backed by
        // the default pager".
        let k = kernel();
        let t = Task::create(&k, "victim");
        t.map()
            .set_fault_policy(FaultPolicy::zero_fill_after(Duration::from_millis(50)));
        let mgr = spawn_manager(k.machine(), "silent", SilentPager::default());
        let addr = t.vm_allocate_with_pager(None, 4096, mgr.port(), 0).unwrap();
        let mut b = [0u8; 4];
        t.read_memory(addr, &mut b).unwrap();
        assert_eq!(b, [0u8; 4]);
    }

    #[test]
    fn slow_pager_succeeds_with_generous_timeout() {
        let k = kernel();
        let t = Task::create(&k, "patient");
        t.map()
            .set_fault_policy(FaultPolicy::abort_after(Duration::from_secs(5)));
        let mgr = spawn_manager(
            k.machine(),
            "slow",
            SlowPager {
                delay: Duration::from_millis(100),
                fill: 9,
            },
        );
        let addr = t.vm_allocate_with_pager(None, 4096, mgr.port(), 0).unwrap();
        let mut b = [0u8; 1];
        t.read_memory(addr, &mut b).unwrap();
        assert_eq!(b[0], 9);
    }

    #[test]
    fn hoarder_triggers_default_pager_takeover() {
        // §6.2.2: "If the data manager does not process and release the
        // data within an adequate period of time, the data may then be
        // paged out to the default pager."
        let k = Kernel::boot(KernelConfig {
            memory_bytes: 24 * 4096,
            reserve_pages: 4,
            ..KernelConfig::default()
        });
        let t = Task::create(&k, "writer");
        let hoarded = Arc::new(AtomicU64::new(0));
        let mgr = spawn_manager(
            k.machine(),
            "hoarder",
            HoarderPager {
                hoarded: hoarded.clone(),
            },
        );
        // Map a large object and dirty many pages so evictions stream
        // dirty data at the hoarder.
        let pages = 256u64;
        let addr = t
            .vm_allocate_with_pager(None, pages * 4096, mgr.port(), 0)
            .unwrap();
        for i in 0..pages {
            t.write_memory(addr + i * 4096, &[i as u8]).unwrap();
        }
        assert!(
            k.machine()
                .stats
                .get(machsim::stats::keys::VM_DEFAULT_PAGER_TAKEOVERS)
                > 0,
            "kernel diverted pageouts away from the hoarder"
        );
        // The kernel kept making progress: all pages were written.
        assert!(k.machine().stats.get(keys::VM_PAGEOUTS) > 0);
    }

    #[test]
    fn changing_pager_breaks_reread_consistency() {
        // §6.1: "A malicious data manager may change the value of its data
        // on each cache refresh." Demonstrate the effect — and the §6.1
        // countermeasure of copying to safe memory first.
        let k = Kernel::boot(KernelConfig {
            memory_bytes: 8 * 4096,
            reserve_pages: 2,
            ..KernelConfig::default()
        });
        let t = Task::create(&k, "victim");
        let mgr = spawn_manager(k.machine(), "changing", ChangingPager::default());
        let pages = 16u64;
        let addr = t
            .vm_allocate_with_pager(None, pages * 4096, mgr.port(), 0)
            .unwrap();
        let mut first = [0u8; 1];
        t.read_memory(addr, &mut first).unwrap();
        // Copy to safe (anonymous) memory immediately — the countermeasure.
        let safe = t.vm_allocate(4096).unwrap();
        t.vm_copy(addr, 4096, safe).unwrap();
        // Thrash the cache so page 0 is evicted and re-fetched.
        for i in 1..pages {
            let mut b = [0u8; 1];
            t.read_memory(addr + i * 4096, &mut b).unwrap();
        }
        let mut second = [0u8; 1];
        t.read_memory(addr, &mut second).unwrap();
        assert_ne!(first[0], second[0], "pager changed data under reread");
        // The safe copy is stable.
        let mut safe_val = [0u8; 1];
        t.read_memory(safe, &mut safe_val).unwrap();
        assert_eq!(safe_val[0], first[0]);
    }

    #[test]
    fn flood_pager_extra_pages_land_in_cache() {
        let k = kernel();
        let t = Task::create(&k, "victim");
        let mgr = spawn_manager(k.machine(), "flood", FloodPager { burst_pages: 8 });
        let addr = t
            .vm_allocate_with_pager(None, 64 * 4096, mgr.port(), 0)
            .unwrap();
        let mut b = [0u8; 1];
        t.read_memory(addr, &mut b).unwrap();
        // One fault, eight pages resident: detectable cache pressure.
        machsim::wall::sleep(Duration::from_millis(100));
        assert!(
            k.machine().stats.get(keys::VM_PAGER_FILLS) == 1 && k.phys().resident_pages() >= 8,
            "flood visible: {} resident",
            k.phys().resident_pages()
        );
    }
}
