//! An Agora-style blackboard (Section 8.4).
//!
//! "Both communication and memory sharing are used to implement a shared
//! blackboard structure in which hypotheses are placed and evaluated by
//! multiple cooperating agents. The blackboard physically resides on a
//! multiprocessor host. All accesses to the blackboard are through a
//! procedural interface that determines if shared memory or communication
//! must be used. Agents use shared memory to directly modify the
//! blackboard. Message passing is used between loosely coupled components."
//!
//! The blackboard is a memory object on its home host. *Local* agents
//! (tasks on that host's kernel) map it and post hypotheses with ordinary
//! stores. *Remote* agents hold only a service port — possibly proxied
//! over the fabric — and post by message. The [`Agent`] handle is the
//! procedural interface hiding the difference.

use crate::array::ArrayService;
use machcore::{Kernel, Task};
use machipc::{IpcError, Message, MsgItem, ReceiveRight, SendRight};
use machnet::{Fabric, Host, ProxyHandle};
use machvm::VmError;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Bytes per hypothesis slot.
pub const SLOT_SIZE: u64 = 64;
/// Payload bytes per hypothesis.
pub const PAYLOAD_SIZE: usize = 48;

/// Slot states.
pub const STATE_EMPTY: u8 = 0;
/// A hypothesis has been posted.
pub const STATE_POSTED: u8 = 1;
/// A hypothesis has been evaluated (score valid).
pub const STATE_EVALUATED: u8 = 2;

/// RPC: post a hypothesis (slot, payload); used by remote agents.
pub const BB_POST: u32 = 0x4901;
/// RPC: read a slot; reply carries (state, score) and the payload.
pub const BB_READ: u32 = 0x4902;
/// RPC: record an evaluation (slot, score).
pub const BB_EVALUATE: u32 = 0x4903;
/// Success reply.
pub const BB_OK: u32 = 0x4980;
/// Failure reply.
pub const BB_ERR: u32 = 0x4981;
const BB_SHUTDOWN: u32 = 0x49FF;

/// One decoded hypothesis slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypothesis {
    /// Slot state.
    pub state: u8,
    /// Evaluation score (valid when state is `STATE_EVALUATED`).
    pub score: u64,
    /// Hypothesis payload.
    pub payload: Vec<u8>,
}

/// The blackboard service on its home host.
pub struct Blackboard {
    /// Service port for message-based (remote) access.
    service: SendRight,
    /// Memory object port for direct mapping by local agents.
    array: Arc<ArrayService>,
    slots: u64,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl fmt::Debug for Blackboard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Blackboard({} slots)", self.slots)
    }
}

fn slot_offset(slot: u64) -> u64 {
    slot * SLOT_SIZE
}

impl Blackboard {
    /// Starts a blackboard with `slots` hypothesis slots on `kernel`.
    ///
    /// The server itself is a local agent: it maps the blackboard region
    /// and serves remote messages by reading and writing that mapping.
    pub fn start(kernel: &Arc<Kernel>, slots: u64) -> Arc<Blackboard> {
        let size = slots * SLOT_SIZE;
        let array = ArrayService::start(kernel.machine(), size, |_| 0);
        let server_task = Task::create(kernel, "blackboard-server");
        let (addr, _) =
            ArrayService::attach(&server_task, array.port()).expect("server maps blackboard");
        let (rx, tx) = ReceiveRight::allocate(kernel.machine());
        rx.set_backlog(1024);
        let thread = std::thread::Builder::new()
            .name("blackboard".into())
            .spawn(move || loop {
                let Ok(msg) = rx.receive(None) else { break };
                let reply = |m: Message| {
                    if let Some(r) = &msg.reply {
                        let _ = r.send(m, Some(Duration::from_secs(5)));
                    }
                };
                let args: Vec<u64> = msg
                    .body
                    .iter()
                    .find_map(|i| i.as_u64s())
                    .unwrap_or_default();
                match msg.id {
                    BB_POST => {
                        let payload = msg.body.iter().find_map(|i| i.as_bytes());
                        match (args.first(), payload) {
                            (Some(&slot), Some(p)) if slot < slots => {
                                let off = slot_offset(slot);
                                let mut data = vec![0u8; PAYLOAD_SIZE];
                                data[..p.len().min(PAYLOAD_SIZE)]
                                    .copy_from_slice(&p[..p.len().min(PAYLOAD_SIZE)]);
                                server_task.write_memory(addr + off + 16, &data).unwrap();
                                server_task
                                    .write_memory(addr + off, &[STATE_POSTED])
                                    .unwrap();
                                reply(Message::new(BB_OK));
                            }
                            _ => reply(Message::new(BB_ERR)),
                        }
                    }
                    BB_EVALUATE => {
                        if args.len() >= 2 && args[0] < slots {
                            let off = slot_offset(args[0]);
                            server_task
                                .write_memory(addr + off + 8, &args[1].to_le_bytes())
                                .unwrap();
                            server_task
                                .write_memory(addr + off, &[STATE_EVALUATED])
                                .unwrap();
                            reply(Message::new(BB_OK));
                        } else {
                            reply(Message::new(BB_ERR));
                        }
                    }
                    BB_READ => match args.first() {
                        Some(&slot) if slot < slots => {
                            let off = slot_offset(slot);
                            let mut raw = vec![0u8; SLOT_SIZE as usize];
                            server_task.read_memory(addr + off, &mut raw).unwrap();
                            let score = u64::from_le_bytes(raw[8..16].try_into().unwrap());
                            reply(
                                Message::new(BB_OK)
                                    .with(MsgItem::u64s(&[raw[0] as u64, score]))
                                    .with(MsgItem::bytes(raw[16..16 + PAYLOAD_SIZE].to_vec())),
                            );
                        }
                        _ => reply(Message::new(BB_ERR)),
                    },
                    BB_SHUTDOWN => break,
                    _ => reply(Message::new(BB_ERR)),
                }
            })
            .expect("spawn blackboard server");
        Arc::new(Blackboard {
            service: tx,
            array,
            slots,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// Number of slots.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// The message-interface port (give remote agents this, or a proxy).
    pub fn service_port(&self) -> &SendRight {
        &self.service
    }

    /// Creates a *local* agent: a task on the blackboard's own kernel
    /// using direct shared memory.
    pub fn local_agent(&self, kernel: &Arc<Kernel>, name: &str) -> Result<Agent, VmError> {
        let task = Task::create(kernel, name);
        let (addr, _) = ArrayService::attach(&task, self.array.port())?;
        Ok(Agent::Local {
            task,
            addr,
            slots: self.slots,
        })
    }

    /// Creates a *remote* agent on another fabric host, reaching the
    /// blackboard purely by message passing.
    pub fn remote_agent(
        &self,
        fabric: &Arc<Fabric>,
        home: &Arc<Host>,
        agent_host: &Arc<Host>,
    ) -> Agent {
        let proxy = fabric.proxy(agent_host, home, self.service.clone());
        Agent::Remote {
            port: proxy.port().clone(),
            _proxy: Some(Arc::new(proxy)),
        }
    }
}

impl Drop for Blackboard {
    fn drop(&mut self) {
        self.service.send_notification(Message::new(BB_SHUTDOWN));
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

/// Agent errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AgentError {
    /// A message-based access failed.
    Ipc(IpcError),
    /// The server rejected the operation.
    Rejected,
    /// A memory-based access failed.
    Vm(VmError),
    /// Slot out of range.
    BadSlot,
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::Ipc(e) => write!(f, "message access failed: {e}"),
            AgentError::Rejected => f.write_str("server rejected"),
            AgentError::Vm(e) => write!(f, "memory access failed: {e}"),
            AgentError::BadSlot => f.write_str("slot out of range"),
        }
    }
}

impl std::error::Error for AgentError {}

impl From<IpcError> for AgentError {
    fn from(e: IpcError) -> Self {
        AgentError::Ipc(e)
    }
}

impl From<VmError> for AgentError {
    fn from(e: VmError) -> Self {
        AgentError::Vm(e)
    }
}

/// The procedural interface "that determines if shared memory or
/// communication must be used".
pub enum Agent {
    /// A tightly coupled agent: direct stores into the mapped blackboard.
    Local {
        /// The agent's task.
        task: Arc<Task>,
        /// Base address of the mapped blackboard.
        addr: u64,
        /// Slot count.
        slots: u64,
    },
    /// A loosely coupled agent: RPCs on the (possibly proxied) port.
    Remote {
        /// The service port.
        port: SendRight,
        /// Keeps a network proxy alive for the agent's lifetime.
        _proxy: Option<Arc<ProxyHandle>>,
    },
}

impl fmt::Debug for Agent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Agent::Local { .. } => f.write_str("Agent::Local(shared memory)"),
            Agent::Remote { .. } => f.write_str("Agent::Remote(messages)"),
        }
    }
}

impl Agent {
    fn rpc(port: &SendRight, msg: Message) -> Result<Message, AgentError> {
        let reply = port.rpc(
            msg,
            Some(Duration::from_secs(10)),
            Some(Duration::from_secs(10)),
        )?;
        if reply.id == BB_OK {
            Ok(reply)
        } else {
            Err(AgentError::Rejected)
        }
    }

    /// Posts a hypothesis into `slot`.
    pub fn post(&self, slot: u64, payload: &[u8]) -> Result<(), AgentError> {
        match self {
            Agent::Local { task, addr, slots } => {
                if slot >= *slots {
                    return Err(AgentError::BadSlot);
                }
                let off = slot_offset(slot);
                let mut data = vec![0u8; PAYLOAD_SIZE];
                data[..payload.len().min(PAYLOAD_SIZE)]
                    .copy_from_slice(&payload[..payload.len().min(PAYLOAD_SIZE)]);
                task.write_memory(addr + off + 16, &data)?;
                task.write_memory(addr + off, &[STATE_POSTED])?;
                Ok(())
            }
            Agent::Remote { port, .. } => {
                Self::rpc(
                    port,
                    Message::new(BB_POST)
                        .with(MsgItem::u64s(&[slot]))
                        .with(MsgItem::bytes(payload.to_vec())),
                )?;
                Ok(())
            }
        }
    }

    /// Records an evaluation score for `slot`.
    pub fn evaluate(&self, slot: u64, score: u64) -> Result<(), AgentError> {
        match self {
            Agent::Local { task, addr, slots } => {
                if slot >= *slots {
                    return Err(AgentError::BadSlot);
                }
                let off = slot_offset(slot);
                task.write_memory(addr + off + 8, &score.to_le_bytes())?;
                task.write_memory(addr + off, &[STATE_EVALUATED])?;
                Ok(())
            }
            Agent::Remote { port, .. } => {
                Self::rpc(
                    port,
                    Message::new(BB_EVALUATE).with(MsgItem::u64s(&[slot, score])),
                )?;
                Ok(())
            }
        }
    }

    /// Reads a slot.
    pub fn read(&self, slot: u64) -> Result<Hypothesis, AgentError> {
        match self {
            Agent::Local { task, addr, slots } => {
                if slot >= *slots {
                    return Err(AgentError::BadSlot);
                }
                let off = slot_offset(slot);
                let mut raw = vec![0u8; SLOT_SIZE as usize];
                task.read_memory(addr + off, &mut raw)?;
                Ok(Hypothesis {
                    state: raw[0],
                    score: u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")),
                    payload: raw[16..16 + PAYLOAD_SIZE].to_vec(),
                })
            }
            Agent::Remote { port, .. } => {
                let reply = Self::rpc(port, Message::new(BB_READ).with(MsgItem::u64s(&[slot])))?;
                let nums = reply.body[0].as_u64s().ok_or(AgentError::Rejected)?;
                let payload = reply.body[1]
                    .as_bytes()
                    .ok_or(AgentError::Rejected)?
                    .to_vec();
                Ok(Hypothesis {
                    state: nums[0] as u8,
                    score: nums[1],
                    payload,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machcore::KernelConfig;
    use machsim::stats::keys;

    fn pad(p: &[u8]) -> Vec<u8> {
        let mut v = vec![0u8; PAYLOAD_SIZE];
        v[..p.len()].copy_from_slice(p);
        v
    }

    #[test]
    fn local_agents_share_memory_directly() {
        let k = Kernel::boot(KernelConfig::default());
        let bb = Blackboard::start(&k, 16);
        let a = bb.local_agent(&k, "speech").unwrap();
        let b = bb.local_agent(&k, "parser").unwrap();
        // Warm the page (the first touch faults through the pager).
        let _ = a.read(3).unwrap();
        let _ = b.read(3).unwrap();
        let msgs0 = k.machine().stats.get(keys::MSG_SENT);
        a.post(3, b"phoneme: /k/").unwrap();
        let h = b.read(3).unwrap();
        assert_eq!(h.state, STATE_POSTED);
        assert_eq!(h.payload, pad(b"phoneme: /k/"));
        // Direct shared memory: no messages once the page is resident.
        assert_eq!(k.machine().stats.get(keys::MSG_SENT), msgs0);
    }

    #[test]
    fn remote_agent_uses_messages() {
        let fabric = Fabric::new();
        let home = fabric.add_host("multiprocessor");
        let away = fabric.add_host("workstation");
        let k = Kernel::boot_on(home.machine().clone(), KernelConfig::default());
        let bb = Blackboard::start(&k, 8);
        let local = bb.local_agent(&k, "evaluator").unwrap();
        let remote = bb.remote_agent(&fabric, &home, &away);
        let net0 = away.machine().stats.get(keys::NET_MESSAGES);
        remote.post(1, b"signal segment").unwrap();
        assert!(
            away.machine().stats.get(keys::NET_MESSAGES) > net0,
            "remote post crossed the network"
        );
        // The local agent sees the remote post through shared memory.
        let h = local.read(1).unwrap();
        assert_eq!(h.state, STATE_POSTED);
        assert_eq!(h.payload, pad(b"signal segment"));
        // Local evaluation is visible to the remote reader.
        local.evaluate(1, 875).unwrap();
        let h = remote.read(1).unwrap();
        assert_eq!(h.state, STATE_EVALUATED);
        assert_eq!(h.score, 875);
    }

    #[test]
    fn many_agents_fill_the_board() {
        let k = Kernel::boot(KernelConfig::default());
        let bb = Blackboard::start(&k, 32);
        let agents: Vec<Agent> = (0..4)
            .map(|i| bb.local_agent(&k, &format!("agent{i}")).unwrap())
            .collect();
        std::thread::scope(|s| {
            for (i, agent) in agents.iter().enumerate() {
                s.spawn(move || {
                    for slot in (i as u64..32).step_by(4) {
                        agent.post(slot, format!("hyp-{slot}").as_bytes()).unwrap();
                        agent.evaluate(slot, slot * 10).unwrap();
                    }
                });
            }
        });
        let reader = bb.local_agent(&k, "reader").unwrap();
        for slot in 0..32u64 {
            let h = reader.read(slot).unwrap();
            assert_eq!(h.state, STATE_EVALUATED, "slot {slot}");
            assert_eq!(h.score, slot * 10);
        }
    }

    #[test]
    fn bad_slots_are_rejected() {
        let k = Kernel::boot(KernelConfig::default());
        let bb = Blackboard::start(&k, 4);
        let local = bb.local_agent(&k, "a").unwrap();
        assert_eq!(local.post(4, b"x").unwrap_err(), AgentError::BadSlot);
        assert_eq!(local.read(99).unwrap_err(), AgentError::BadSlot);
    }
}
