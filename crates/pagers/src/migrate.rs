//! Copy-on-reference task migration (Section 8.2).
//!
//! "Edward Zayas showed that migration could be performed efficiently
//! using copy-on-reference techniques. The task migration service can
//! create a memory object to represent a region of the original task's
//! address space, and map that region into the new task's address space on
//! the remote host. The kernel managing the remote host treats page faults
//! on the newly-migrated task by making paging requests on that memory
//! object, just as it does for other tasks."
//!
//! Three strategies, per the paper's discussion of generality:
//!
//! * [`MigrationStrategy::Eager`] — copy the whole address space before
//!   the task resumes (the baseline migration cost model);
//! * [`MigrationStrategy::CopyOnReference`] — pages move only when
//!   referenced;
//! * pre-paging — `CopyOnReference` with a prefetch window: "the migration
//!   manager may provide some data in advance for tasks with predictable
//!   access patterns".

use machcore::{spawn_manager, DataManager, Kernel, KernelConn, ManagerHandle, Task};
use machipc::OolBuffer;
use machnet::{Fabric, Host};
use machsim::stats::keys;
use machvm::{VmError, VmProt};
use std::fmt;
use std::sync::Arc;

const PAGE: u64 = 4096;

/// How a task's memory moves to the new host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationStrategy {
    /// Transfer every page before the task resumes.
    Eager,
    /// Transfer pages on first reference; `prefetch_pages` extra pages per
    /// fault model the paper's pre-paging option (0 = pure on-demand).
    CopyOnReference {
        /// Additional pages shipped with every demand fill.
        prefetch_pages: u64,
    },
}

/// The migration manager's pager: serves the origin task's memory over
/// the network. Transfers are charged by the network message server the
/// destination kernel reaches the pager through.
struct MigrationPager {
    /// Snapshot of the origin region (the origin task is frozen during
    /// migration, so a snapshot is equivalent to reading it lazily).
    source: Arc<Vec<u8>>,
    prefetch_pages: u64,
}

impl DataManager for MigrationPager {
    fn init(&mut self, kernel: &KernelConn, object: u64) {
        // Copy-on-reference means *only referenced pages* cross the
        // network; kernel cluster paging would drag whole runs over the
        // wire on every fault. Pre-paging stays a manager decision
        // (`prefetch_pages`), per §8.2.
        kernel.set_cluster(object, 1);
    }

    fn data_request(
        &mut self,
        kernel: &KernelConn,
        object: u64,
        offset: u64,
        length: u64,
        _access: VmProt,
    ) {
        // Demand pages plus the prefetch window, clamped to the region.
        let total = (length + self.prefetch_pages * PAGE)
            .min(self.source.len() as u64 - offset.min(self.source.len() as u64));
        let end = (offset + total).min(self.source.len() as u64);
        if offset >= end {
            kernel.data_unavailable(object, offset, length);
            return;
        }
        let data = self.source[offset as usize..end as usize].to_vec();
        kernel.data_provided(object, offset, OolBuffer::from_vec(data), VmProt::NONE);
    }
}

/// Outcome of a migration.
#[derive(Clone, Debug)]
pub struct MigrationReport {
    /// Simulated nanoseconds from migration start until the task could
    /// execute its first instruction on the new host.
    pub resume_latency_ns: u64,
    /// Bytes moved across the network before resume.
    pub bytes_before_resume: u64,
    /// The migrated region's address in the new task.
    pub address: u64,
    /// Region size.
    pub size: u64,
}

/// The task migration service.
pub struct MigrationManager {
    fabric: Arc<Fabric>,
}

impl fmt::Debug for MigrationManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MigrationManager")
    }
}

/// A migrated task plus the pager keeping its origin pages reachable.
pub struct MigratedTask {
    /// The new task on the destination host.
    pub task: Arc<Task>,
    /// The report for this migration.
    pub report: MigrationReport,
    /// Keeps the copy-on-reference pager alive (None for eager).
    _pager: Option<ManagerHandle>,
}

impl MigrationManager {
    /// Creates a migration service over a fabric.
    pub fn new(fabric: &Arc<Fabric>) -> Self {
        Self {
            fabric: fabric.clone(),
        }
    }

    /// Migrates `[address, address+size)` of `source_task` (on
    /// `origin`) to a fresh task on `destination`/`dst_kernel`.
    #[allow(clippy::too_many_arguments)]
    pub fn migrate_region(
        &self,
        source_task: &Arc<Task>,
        origin: &Arc<Host>,
        address: u64,
        size: u64,
        dst_kernel: &Arc<Kernel>,
        destination: &Arc<Host>,
        strategy: MigrationStrategy,
    ) -> Result<MigratedTask, VmError> {
        // Freeze the origin task and snapshot the region (§8.2: the
        // memory object "represents a region of the original task's
        // address space").
        source_task.suspend();
        let snapshot = Arc::new(source_task.vm_read(address, size)?);
        let new_task = Task::create(dst_kernel, &format!("{}-migrated", source_task.name()));
        let t0 = destination.machine().clock.now_ns();
        let net0 = destination.machine().stats.get(keys::NET_BYTES);
        match strategy {
            MigrationStrategy::Eager => {
                // Ship everything, then build the task's memory.
                for end in [origin, destination] {
                    let m = end.machine();
                    m.clock.charge(m.cost.net_op_ns(size));
                    m.stats.incr(keys::NET_MESSAGES);
                    m.stats.add(keys::NET_BYTES, size);
                }
                let addr = new_task.vm_allocate(size)?;
                new_task.vm_write(addr, &snapshot)?;
                let report = MigrationReport {
                    resume_latency_ns: destination.machine().clock.now_ns() - t0,
                    bytes_before_resume: destination.machine().stats.get(keys::NET_BYTES) - net0,
                    address: addr,
                    size,
                };
                Ok(MigratedTask {
                    task: new_task,
                    report,
                    _pager: None,
                })
            }
            MigrationStrategy::CopyOnReference { prefetch_pages } => {
                let pager = MigrationPager {
                    source: snapshot,
                    prefetch_pages,
                };
                let handle = spawn_manager(origin.machine(), "migrate", pager);
                // The destination kernel reaches the pager through the
                // network message server.
                let proxied = self
                    .fabric
                    .proxy(destination, origin, handle.port().clone());
                let addr = new_task.vm_allocate_with_pager(None, size, proxied.port(), 0)?;
                // pager_init is asynchronous; until the pager's cluster
                // advice lands, a fault would pull a kernel-sized cluster
                // and void the copy-on-reference accounting.
                let object = dst_kernel.object_for_port(proxied.port(), size);
                for _ in 0..500 {
                    if object.cluster_hint() == 1 {
                        break;
                    }
                    machsim::wall::sleep(std::time::Duration::from_millis(1));
                }
                // Leak the proxy alongside the pager handle so the object
                // stays reachable for the task's lifetime.
                std::mem::forget(proxied);
                let report = MigrationReport {
                    resume_latency_ns: destination.machine().clock.now_ns() - t0,
                    bytes_before_resume: destination.machine().stats.get(keys::NET_BYTES) - net0,
                    address: addr,
                    size,
                };
                Ok(MigratedTask {
                    task: new_task,
                    report,
                    _pager: Some(handle),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machcore::KernelConfig;

    type HostKernel = (Arc<Host>, Arc<Kernel>);

    fn setup() -> (Arc<Fabric>, HostKernel, HostKernel) {
        let fabric = Fabric::new();
        let ha = fabric.add_host("origin");
        let hb = fabric.add_host("destination");
        let ka = Kernel::boot_on(ha.machine().clone(), KernelConfig::default());
        let kb = Kernel::boot_on(hb.machine().clone(), KernelConfig::default());
        (fabric, (ha, ka), (hb, kb))
    }

    fn make_source(k: &Arc<Kernel>, pages: u64) -> (Arc<Task>, u64) {
        let t = Task::create(k, "source");
        let addr = t.vm_allocate(pages * PAGE).unwrap();
        for i in 0..pages {
            t.write_memory(addr + i * PAGE, &[i as u8 + 1]).unwrap();
        }
        (t, addr)
    }

    #[test]
    fn eager_moves_everything_up_front() {
        let (fabric, (ha, ka), (hb, kb)) = setup();
        let (src, addr) = make_source(&ka, 16);
        let mm = MigrationManager::new(&fabric);
        let migrated = mm
            .migrate_region(
                &src,
                &ha,
                addr,
                16 * PAGE,
                &kb,
                &hb,
                MigrationStrategy::Eager,
            )
            .unwrap();
        assert_eq!(migrated.report.bytes_before_resume, 16 * PAGE);
        let mut b = [0u8; 1];
        migrated
            .task
            .read_memory(migrated.report.address + 5 * PAGE, &mut b)
            .unwrap();
        assert_eq!(b[0], 6);
    }

    #[test]
    fn copy_on_reference_moves_nothing_up_front() {
        let (fabric, (ha, ka), (hb, kb)) = setup();
        let (src, addr) = make_source(&ka, 16);
        let mm = MigrationManager::new(&fabric);
        let migrated = mm
            .migrate_region(
                &src,
                &ha,
                addr,
                16 * PAGE,
                &kb,
                &hb,
                MigrationStrategy::CopyOnReference { prefetch_pages: 0 },
            )
            .unwrap();
        // Only the pager_init control message crosses before resume.
        assert!(migrated.report.bytes_before_resume < PAGE);
        assert!(migrated.report.resume_latency_ns < 10_000_000);
        // Touch three pages: only those cross the network.
        let net0 = hb.machine().stats.get(keys::NET_BYTES);
        for page in [0u64, 7, 15] {
            let mut b = [0u8; 1];
            migrated
                .task
                .read_memory(migrated.report.address + page * PAGE, &mut b)
                .unwrap();
            assert_eq!(b[0], page as u8 + 1);
        }
        let moved = hb.machine().stats.get(keys::NET_BYTES) - net0;
        // 3 demand pages (plus protocol crossings via the proxy).
        assert!((3 * PAGE..6 * PAGE).contains(&moved), "moved {moved}");
    }

    #[test]
    fn eager_is_slower_to_resume_but_touching_everything_evens_out() {
        let (fabric, (ha, ka), (hb, kb)) = setup();
        let (src, addr) = make_source(&ka, 64);
        let mm = MigrationManager::new(&fabric);
        let eager = mm
            .migrate_region(
                &src,
                &ha,
                addr,
                64 * PAGE,
                &kb,
                &hb,
                MigrationStrategy::Eager,
            )
            .unwrap();
        src.resume();
        let (src2, addr2) = make_source(&ka, 64);
        let cor = mm
            .migrate_region(
                &src2,
                &ha,
                addr2,
                64 * PAGE,
                &kb,
                &hb,
                MigrationStrategy::CopyOnReference { prefetch_pages: 0 },
            )
            .unwrap();
        assert!(
            cor.report.resume_latency_ns < eager.report.resume_latency_ns,
            "copy-on-reference resumes faster: {} vs {}",
            cor.report.resume_latency_ns,
            eager.report.resume_latency_ns
        );
    }

    #[test]
    fn prefetch_reduces_fault_count() {
        let (fabric, (ha, ka), (hb, kb)) = setup();
        let mm = MigrationManager::new(&fabric);
        let mut fills = Vec::new();
        for prefetch in [0u64, 7] {
            let (src, addr) = make_source(&ka, 32);
            let migrated = mm
                .migrate_region(
                    &src,
                    &ha,
                    addr,
                    32 * PAGE,
                    &kb,
                    &hb,
                    MigrationStrategy::CopyOnReference {
                        prefetch_pages: prefetch,
                    },
                )
                .unwrap();
            let fills0 = hb.machine().stats.get(keys::VM_PAGER_FILLS);
            // Sequential scan: the predictable pattern pre-paging targets.
            for page in 0..32u64 {
                let mut b = [0u8; 1];
                migrated
                    .task
                    .read_memory(migrated.report.address + page * PAGE, &mut b)
                    .unwrap();
            }
            fills.push(hb.machine().stats.get(keys::VM_PAGER_FILLS) - fills0);
            src.resume();
        }
        assert!(
            fills[1] * 2 < fills[0],
            "prefetching cut demand fills: {fills:?}"
        );
    }

    #[test]
    fn migrated_task_data_is_a_snapshot() {
        let (fabric, (ha, ka), (hb, kb)) = setup();
        let (src, addr) = make_source(&ka, 4);
        let mm = MigrationManager::new(&fabric);
        let migrated = mm
            .migrate_region(
                &src,
                &ha,
                addr,
                4 * PAGE,
                &kb,
                &hb,
                MigrationStrategy::CopyOnReference { prefetch_pages: 0 },
            )
            .unwrap();
        // The origin resumes and scribbles; the migrated task still sees
        // the migration-time contents.
        src.resume();
        src.write_memory(addr, &[0xEE]).unwrap();
        let mut b = [0u8; 1];
        migrated
            .task
            .read_memory(migrated.report.address, &mut b)
            .unwrap();
        assert_eq!(b[0], 1);
    }
}
