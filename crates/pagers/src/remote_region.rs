//! Copy-on-reference out-of-line data across the network (Section 7).
//!
//! Within one host, a large message body moves by copy-on-write mapping
//! (`machcore::msg`). Across a NORMA network there is no shared memory to
//! map — but the paper points out that "It is possible to implement
//! copy-on-reference and read/write sharing of information in a network
//! environment without explicit hardware support." This module is that
//! path for message data: the sender freezes a snapshot behind a pager and
//! ships only a *handle*; the receiver maps the handle and pages cross the
//! fabric when — and only when — they are referenced.
//!
//! Compare [`send_eager`], which transmits every byte up front: the
//! network analogue of an inline copy.

use machcore::{spawn_manager, DataManager, Kernel, KernelConn, ManagerHandle, Task};
use machipc::{Message, MsgItem, OolBuffer, SendRight};
use machnet::{Fabric, Host};
use machvm::{VmError, VmProt};
use std::sync::Arc;
use std::time::Duration;

#[cfg(test)]
const PAGE: u64 = 4096;

/// Message id for region handles in transit.
pub const REMOTE_REGION: u32 = 0x4A01;
/// Message id for eagerly copied regions.
pub const REMOTE_REGION_EAGER: u32 = 0x4A02;

/// Serves a frozen snapshot of the sender's region.
struct SnapshotPager {
    data: Arc<Vec<u8>>,
}

impl DataManager for SnapshotPager {
    fn init(&mut self, k: &KernelConn, object: u64) {
        // Pages cross the fabric when — and only when — they are
        // referenced; kernel cluster paging would ship unreferenced
        // neighbours on every fault.
        k.set_cluster(object, 1);
    }

    fn data_request(&mut self, k: &KernelConn, object: u64, offset: u64, length: u64, _a: VmProt) {
        let end = ((offset + length) as usize).min(self.data.len());
        if offset as usize >= end {
            k.data_unavailable(object, offset, length);
            return;
        }
        let mut page = self.data[offset as usize..end].to_vec();
        page.resize(length as usize, 0);
        k.data_provided(object, offset, OolBuffer::from_vec(page), VmProt::NONE);
    }
}

/// Sends `[address, address+size)` of `task` to `dest_port` (a port whose
/// receiver is on `to`) as a copy-on-reference handle. The pager serving
/// the snapshot lives on `from` and is kept alive by the returned handle.
pub fn send_copy_on_reference(
    fabric: &Arc<Fabric>,
    from: &Arc<Host>,
    to: &Arc<Host>,
    task: &Task,
    address: u64,
    size: u64,
    dest_port: &SendRight,
) -> Result<ManagerHandle, VmError> {
    // Freeze the data: vm_read gives a consistent snapshot (a real system
    // would write-protect and serve lazily; the cost model is identical
    // because the sender's pages were resident either way).
    let snapshot = Arc::new(task.vm_read(address, size)?);
    let pager = spawn_manager(
        from.machine(),
        "remote-region",
        SnapshotPager { data: snapshot },
    );
    let msg = Message::new(REMOTE_REGION)
        .with(MsgItem::u64s(&[size]))
        .with(MsgItem::SendRights(vec![pager.port().clone()]));
    fabric
        .send(from, to, dest_port, msg, Some(Duration::from_secs(10)))
        .map_err(|_| VmError::ObjectDestroyed)?;
    Ok(pager)
}

/// Sends the same region with every byte transmitted immediately.
pub fn send_eager(
    fabric: &Arc<Fabric>,
    from: &Arc<Host>,
    to: &Arc<Host>,
    task: &Task,
    address: u64,
    size: u64,
    dest_port: &SendRight,
) -> Result<(), VmError> {
    let data = task.vm_read(address, size)?;
    let msg = Message::new(REMOTE_REGION_EAGER)
        .with(MsgItem::u64s(&[size]))
        .with(MsgItem::OutOfLine(OolBuffer::from_vec(data)));
    fabric
        .send(from, to, dest_port, msg, Some(Duration::from_secs(10)))
        .map_err(|_| VmError::ObjectDestroyed)
}

/// Receiver side: maps a [`REMOTE_REGION`] handle into `task`. The memory
/// object port arrived through the network message server, so faults are
/// charged as network traffic automatically. Returns `(address, size)`.
pub fn map_received(task: &Task, msg: &Message) -> Result<(u64, u64), VmError> {
    if msg.id != REMOTE_REGION {
        return Err(VmError::ObjectDestroyed);
    }
    let size = msg.body[0].as_u64s().ok_or(VmError::ObjectDestroyed)?[0];
    let MsgItem::SendRights(rights) = &msg.body[1] else {
        return Err(VmError::ObjectDestroyed);
    };
    let addr = task.vm_allocate_with_pager(None, size, &rights[0], 0)?;
    // pager_init is asynchronous; wait for the snapshot pager's
    // single-page advice so the first faults don't pull clusters.
    let object = task.kernel().object_for_port(&rights[0], size);
    for _ in 0..500 {
        if object.cluster_hint() == 1 {
            break;
        }
        machsim::wall::sleep(std::time::Duration::from_millis(1));
    }
    Ok((addr, size))
}

/// Receiver side for the eager variant: copies into fresh task memory.
pub fn copy_in_eager(task: &Task, msg: &Message) -> Result<(u64, u64), VmError> {
    let size = msg.body[0].as_u64s().ok_or(VmError::ObjectDestroyed)?[0];
    let data = msg
        .body
        .iter()
        .find_map(|i| i.as_ool())
        .ok_or(VmError::ObjectDestroyed)?;
    let addr = task.map().allocate(None, size)?;
    task.map().write(addr, data.as_slice())?;
    Ok((addr, size))
}

/// One booted host of the two-host test rig.
pub type HostKernel = (Arc<Host>, Arc<Kernel>);

/// Convenience: a two-host test rig.
#[doc(hidden)]
pub fn two_hosts() -> (Arc<Fabric>, HostKernel, HostKernel) {
    let fabric = Fabric::new();
    let ha = fabric.add_host("sender");
    let hb = fabric.add_host("receiver");
    let ka = Kernel::boot_on(ha.machine().clone(), machcore::KernelConfig::default());
    let kb = Kernel::boot_on(hb.machine().clone(), machcore::KernelConfig::default());
    (fabric, (ha, ka), (hb, kb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use machipc::ReceiveRight;
    use machsim::stats::keys;

    #[test]
    fn copy_on_reference_moves_only_touched_pages() {
        let (fabric, (ha, ka), (hb, kb)) = two_hosts();
        let sender = Task::create(&ka, "s");
        let receiver = Task::create(&kb, "r");
        let pages = 32u64;
        let addr = sender.vm_allocate(pages * PAGE).unwrap();
        for i in 0..pages {
            sender
                .write_memory(addr + i * PAGE, &[i as u8 + 1])
                .unwrap();
        }
        let (rx, tx) = ReceiveRight::allocate(hb.machine());
        let net0 = hb.machine().stats.get(keys::NET_BYTES);
        let _pager =
            send_copy_on_reference(&fabric, &ha, &hb, &sender, addr, pages * PAGE, &tx).unwrap();
        let msg = rx.receive(Some(Duration::from_secs(5))).unwrap();
        let (raddr, rsize) = map_received(&receiver, &msg).unwrap();
        assert_eq!(rsize, pages * PAGE);
        let handle_bytes = hb.machine().stats.get(keys::NET_BYTES) - net0;
        assert!(handle_bytes < PAGE, "the handle is tiny: {handle_bytes}B");
        // Touch 3 of 32 pages: roughly 3 pages cross the wire.
        for p in [0u64, 15, 31] {
            let mut b = [0u8; 1];
            receiver.read_memory(raddr + p * PAGE, &mut b).unwrap();
            assert_eq!(b[0], p as u8 + 1);
        }
        let total = hb.machine().stats.get(keys::NET_BYTES) - net0;
        assert!(
            (3 * PAGE..6 * PAGE).contains(&total),
            "3 touched pages moved {total} bytes"
        );
    }

    #[test]
    fn eager_moves_everything_immediately() {
        let (fabric, (ha, ka), (hb, kb)) = two_hosts();
        let sender = Task::create(&ka, "s");
        let receiver = Task::create(&kb, "r");
        let pages = 32u64;
        let addr = sender.vm_allocate(pages * PAGE).unwrap();
        sender.write_memory(addr, &[9]).unwrap();
        let (rx, tx) = ReceiveRight::allocate(hb.machine());
        let net0 = hb.machine().stats.get(keys::NET_BYTES);
        send_eager(&fabric, &ha, &hb, &sender, addr, pages * PAGE, &tx).unwrap();
        assert!(hb.machine().stats.get(keys::NET_BYTES) - net0 >= pages * PAGE);
        let msg = rx.receive(Some(Duration::from_secs(5))).unwrap();
        let (raddr, _) = copy_in_eager(&receiver, &msg).unwrap();
        let mut b = [0u8; 1];
        receiver.read_memory(raddr, &mut b).unwrap();
        assert_eq!(b[0], 9);
    }

    #[test]
    fn snapshot_is_immutable_after_send() {
        let (fabric, (ha, ka), (hb, kb)) = two_hosts();
        let sender = Task::create(&ka, "s");
        let receiver = Task::create(&kb, "r");
        let addr = sender.vm_allocate(PAGE).unwrap();
        sender.write_memory(addr, &[1]).unwrap();
        let (rx, tx) = ReceiveRight::allocate(hb.machine());
        let _pager = send_copy_on_reference(&fabric, &ha, &hb, &sender, addr, PAGE, &tx).unwrap();
        // The sender scribbles after the send; the receiver must still see
        // the send-time contents (copy semantics of message data).
        sender.write_memory(addr, &[2]).unwrap();
        let msg = rx.receive(Some(Duration::from_secs(5))).unwrap();
        let (raddr, _) = map_received(&receiver, &msg).unwrap();
        let mut b = [0u8; 1];
        receiver.read_memory(raddr, &mut b).unwrap();
        assert_eq!(b[0], 1);
    }
}
