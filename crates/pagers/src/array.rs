//! A shared-array service: the Section 9 motivating scenario.
//!
//! "A user program can, for example, create a memory object which is used
//! to represent a data array and provide access to that array to many
//! other programs through a server message interface. The clients of such
//! a service would only have to exchange a single message with the server
//! to get access to the array and, if other clients had already referenced
//! the data of the array, the physical memory cache of the array would be
//! directly accessible to the client with no further message traffic."
//!
//! Experiment E9 measures exactly that: messages and pager fills per
//! client, as a function of client arrival order.

use machcore::{spawn_manager, DataManager, KernelConn, ManagerHandle, Task};
use machipc::{Message, MsgItem, OolBuffer, ReceiveRight, SendRight};
use machsim::Machine;
use machvm::{VmError, VmProt};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// RPC id: request access to the array; the reply carries the memory
/// object port and the array size.
pub const ARRAY_ATTACH: u32 = 0x4601;
/// Reply id.
pub const ARRAY_OK: u32 = 0x4680;
/// Shutdown.
const ARRAY_SHUTDOWN: u32 = 0x46FF;

/// The pager behind the array: computes each page's contents on demand,
/// and keeps modified pages written back by the kernel so evicted writes
/// survive refaults.
struct ArrayPager {
    generator: Arc<dyn Fn(u64) -> u8 + Send + Sync>,
    /// Pages modified by clients and paged out, keyed by page offset.
    /// Stored per page: requests and write-backs may both span several
    /// pages (cluster paging), and their runs need not line up.
    written: std::collections::HashMap<u64, Vec<u8>>,
}

const ARRAY_PAGE: u64 = 4096;

impl DataManager for ArrayPager {
    fn init(&mut self, kernel: &KernelConn, object: u64) {
        // The array must stay cached between clients — the whole point of
        // the Section 9 scenario.
        kernel.cache(object, true);
    }

    fn data_request(
        &mut self,
        kernel: &KernelConn,
        object: u64,
        offset: u64,
        length: u64,
        _access: VmProt,
    ) {
        let mut data = Vec::with_capacity(length as usize);
        let mut page = offset;
        while page < offset + length {
            match self.written.get(&page) {
                Some(stored) => data.extend_from_slice(stored),
                None => data.extend((page..page + ARRAY_PAGE).map(|i| (self.generator)(i))),
            }
            page += ARRAY_PAGE;
        }
        kernel.data_provided(object, offset, OolBuffer::from_vec(data), VmProt::NONE);
    }

    fn data_write(&mut self, kernel: &KernelConn, object: u64, offset: u64, data: OolBuffer) {
        let bytes = data.len() as u64;
        for (i, chunk) in data.as_slice().chunks(ARRAY_PAGE as usize).enumerate() {
            self.written
                .insert(offset + i as u64 * ARRAY_PAGE, chunk.to_vec());
        }
        kernel.release_laundry(object, bytes);
    }
}

/// A server exporting one array as a memory object.
pub struct ArrayService {
    service_port: SendRight,
    _pager: ManagerHandle,
    size: u64,
    server_thread: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl fmt::Debug for ArrayService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArrayService({} bytes)", self.size)
    }
}

impl ArrayService {
    /// Starts an array service; `generator` defines element `i`'s value.
    pub fn start(
        machine: &Machine,
        size: u64,
        generator: impl Fn(u64) -> u8 + Send + Sync + 'static,
    ) -> Arc<ArrayService> {
        let pager = spawn_manager(
            machine,
            "array",
            ArrayPager {
                generator: Arc::new(generator),
                written: std::collections::HashMap::new(),
            },
        );
        let object_port = pager.port().clone();
        let (rx, tx) = ReceiveRight::allocate(machine);
        rx.set_backlog(1024);
        let thread = std::thread::Builder::new()
            .name("array-server".into())
            .spawn(move || loop {
                let Ok(msg) = rx.receive(None) else { break };
                match msg.id {
                    ARRAY_ATTACH => {
                        if let Some(reply) = &msg.reply {
                            let _ = reply.send(
                                Message::new(ARRAY_OK)
                                    .with(MsgItem::u64s(&[size]))
                                    .with(MsgItem::SendRights(vec![object_port.clone()])),
                                Some(Duration::from_secs(5)),
                            );
                        }
                    }
                    ARRAY_SHUTDOWN => break,
                    _ => {}
                }
            })
            .expect("spawn array server");
        Arc::new(ArrayService {
            service_port: tx,
            _pager: pager,
            size,
            server_thread: parking_lot::Mutex::new(Some(thread)),
        })
    }

    /// The service's RPC port.
    pub fn port(&self) -> &SendRight {
        &self.service_port
    }

    /// Client side: one RPC, then map the array. Returns `(addr, size)`.
    pub fn attach(task: &Task, service: &SendRight) -> Result<(u64, u64), VmError> {
        let reply = service
            .rpc(
                Message::new(ARRAY_ATTACH),
                Some(Duration::from_secs(10)),
                Some(Duration::from_secs(10)),
            )
            .map_err(|_| VmError::ObjectDestroyed)?;
        let size = reply.body[0].as_u64s().expect("size")[0];
        let MsgItem::SendRights(rights) = &reply.body[1] else {
            return Err(VmError::ObjectDestroyed);
        };
        let addr = task.vm_allocate_with_pager(None, size, &rights[0], 0)?;
        Ok((addr, size))
    }
}

impl Drop for ArrayService {
    fn drop(&mut self) {
        self.service_port
            .send_notification(Message::new(ARRAY_SHUTDOWN));
        if let Some(t) = self.server_thread.lock().take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machcore::{Kernel, KernelConfig};
    use machsim::stats::keys;

    #[test]
    fn single_message_then_cached_access() {
        let k = Kernel::boot(KernelConfig::default());
        let service = ArrayService::start(k.machine(), 16 * 4096, |i| (i % 251) as u8);
        // First client: pays one RPC plus pager fills.
        let t1 = Task::create(&k, "c1");
        let (a1, size) = ArrayService::attach(&t1, service.port()).unwrap();
        let mut buf = vec![0u8; size as usize];
        t1.read_memory(a1, &mut buf).unwrap();
        for (i, &b) in buf.iter().enumerate() {
            assert_eq!(b, (i % 251) as u8);
        }
        let fills_after_first = k.machine().stats.get(keys::VM_PAGER_FILLS);
        // Fills count request *messages*; a 16-page scan costs two
        // 8-page cluster requests.
        assert!(fills_after_first >= 16 / machcore::DEFAULT_CLUSTER_PAGES as u64);
        // Second client: one message, zero pager fills.
        let msgs_before = k.machine().stats.get(keys::MSG_SENT);
        let t2 = Task::create(&k, "c2");
        let (a2, _) = ArrayService::attach(&t2, service.port()).unwrap();
        t2.read_memory(a2, &mut buf).unwrap();
        assert_eq!(buf[5], 5);
        assert_eq!(
            k.machine().stats.get(keys::VM_PAGER_FILLS),
            fills_after_first,
            "second client caused no pager traffic"
        );
        // The attach RPC is 2 messages (request + reply).
        assert!(k.machine().stats.get(keys::MSG_SENT) - msgs_before <= 3);
    }
}
