//! Consistent network shared memory (Section 4.2).
//!
//! A data manager provides one shared memory region to clients on
//! *different hosts*, each with its own Mach kernel. The server follows
//! the paper's three-frame scenario:
//!
//! 1. Each kernel maps the object and the server receives one
//!    `pager_init` per kernel, recording each kernel's request port.
//! 2. Read faults: the server supplies the page *write-locked*
//!    (`lock_value = VM_PROT_WRITE`) and records every reader.
//! 3. A write fault on a read-locked page arrives as `pager_data_unlock`;
//!    the server invalidates every other use with `pager_flush_request`,
//!    then grants write access with `pager_data_lock` and no lock.
//!
//! The coherence discipline is the Li–Hudak single-writer/multiple-reader
//! protocol the paper cites: "Multiple read accesses with no writers are
//! permitted but only one writer can be allowed to modify a page of data
//! at a time", and "A subsequent attempt to read by another workstation
//! will cause the writer to revert to reader status."

use machcore::{spawn_manager, DataManager, KernelConn, ManagerHandle, Task};
use machipc::{OolBuffer, SendRight};
use machnet::{Fabric, Host, ProxyHandle};
use machvm::{VmError, VmProt};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

const PAGE: u64 = 4096;

/// How the server grants access on read faults.
///
/// The paper's example uses [`GrantPolicy::ReadLocked`] and notes in
/// footnote 9 that "It may be more practical to allow the first client
/// write access, and then to revoke it later" — that is
/// [`GrantPolicy::WriteFirst`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GrantPolicy {
    /// Readers always get write-locked pages; writes negotiate an unlock.
    #[default]
    ReadLocked,
    /// A sole user gets the page writable immediately; access is revoked
    /// when another client shows up.
    WriteFirst,
}

/// One kernel's attachment to the shared region.
struct Session {
    conn: KernelConn,
    object: u64,
}

/// Who holds a page, and how.
#[derive(Default)]
struct PageState {
    /// Sessions holding the page read-only.
    readers: Vec<usize>,
    /// Session holding the page writable, if any.
    writer: Option<usize>,
    /// Read requests waiting for the writer's data to come home.
    pending_reads: VecDeque<usize>,
}

struct ServerState {
    /// Grant policy (footnote 9).
    policy: GrantPolicy,
    /// Unlock negotiations served (for the ablation measurement).
    unlock_negotiations: u64,
    /// Master copy of the region.
    data: Vec<u8>,
    sessions: Vec<Session>,
    pages: HashMap<u64, PageState>,
    /// Event counters for the experiments.
    invalidations: u64,
    demotions: u64,
}

impl ServerState {
    fn page(&mut self, offset: u64) -> &mut PageState {
        self.pages.entry(offset - offset % PAGE).or_default()
    }

    /// Sends `pager_flush_request` to a session. The session's request
    /// right is a network-message-server proxy for remote kernels, so the
    /// traffic is charged by the fabric automatically.
    fn flush(&mut self, session: usize, offset: u64) {
        self.invalidations += 1;
        let s = &self.sessions[session];
        s.conn.flush_request(s.object, offset, PAGE);
    }

    /// Supplies a page to a session with the given lock.
    fn provide(&mut self, session: usize, offset: u64, lock: VmProt) {
        let page = offset - offset % PAGE;
        let data = self.data[page as usize..(page + PAGE) as usize].to_vec();
        let s = &self.sessions[session];
        s.conn
            .data_provided(s.object, page, OolBuffer::from_vec(data), lock);
    }

    /// Serves a read request given the current page state.
    fn serve_read(&mut self, session: usize, offset: u64) {
        let page_off = offset - offset % PAGE;
        let policy = self.policy;
        let st = self.page(page_off);
        if let Some(writer) = st.writer {
            if writer == session {
                // The writer re-faulting its own page (it was evicted
                // clean): re-supply it writable.
                self.provide(session, page_off, VmProt::NONE);
                return;
            }
            // "A subsequent attempt to read by another workstation will
            // cause the writer to revert to reader status": flush the
            // writer and finish when its data comes home.
            st.pending_reads.push_back(session);
            self.demotions += 1;
            self.flush(writer, page_off);
            return;
        }
        if policy == GrantPolicy::WriteFirst && st.readers.is_empty() {
            // Footnote 9: the sole user gets the page writable right away;
            // a later client's request will revoke it.
            st.writer = Some(session);
            self.provide(session, page_off, VmProt::NONE);
            return;
        }
        if !st.readers.contains(&session) {
            st.readers.push(session);
        }
        // Readers get the page write-locked.
        self.provide(session, page_off, VmProt::WRITE);
    }

    /// Grants write access to a session, invalidating all other uses.
    fn grant_write(&mut self, session: usize, offset: u64, already_has_page: bool) {
        let page_off = offset - offset % PAGE;
        let st = self.page(page_off);
        let others: Vec<usize> = st
            .readers
            .iter()
            .copied()
            .filter(|&r| r != session)
            .chain(st.writer.iter().copied().filter(|&w| w != session))
            .collect();
        st.readers.clear();
        st.writer = Some(session);
        for other in others {
            self.flush(other, page_off);
        }
        if already_has_page {
            // The kernel has the (read-locked) page; relax the lock.
            let s = &self.sessions[session];
            s.conn.data_lock(s.object, page_off, PAGE, VmProt::NONE);
        } else {
            self.provide(session, page_off, VmProt::NONE);
        }
    }
}

/// The shared memory data manager.
struct ShmManager {
    state: Arc<Mutex<ServerState>>,
}

impl DataManager for ShmManager {
    fn init(&mut self, kernel: &KernelConn, object: u64) {
        // Single-page coherence: a clustered request would make the
        // kernel prefetch neighbors — registering the client for pages it
        // never asked about and, on a write fault, granting it spurious
        // write ownership of every page in the cluster run. Cap the
        // cluster before the session becomes visible so `attach` can wait
        // for the attribute to land.
        kernel.set_cluster(object, 1);
        let mut st = self.state.lock();
        st.sessions.push(Session {
            conn: kernel.clone(),
            object,
        });
    }

    fn data_request(
        &mut self,
        kernel: &KernelConn,
        _object: u64,
        offset: u64,
        length: u64,
        access: VmProt,
    ) {
        let mut st = self.state.lock();
        let Some(session) = st
            .sessions
            .iter()
            .position(|s| s.conn.request_port().same_port(kernel.request_port()))
        else {
            return;
        };
        // Distinguish ownership grants from plain read service in the
        // fault chain (coherence bugs look identical without this).
        kernel.machine().trace_event(
            "pager.netshm",
            machsim::EventKind::Mark(if access.allows(VmProt::WRITE) {
                "shm_grant_write"
            } else {
                "shm_serve_read"
            }),
        );
        let mut page = offset - offset % PAGE;
        let end = offset + length;
        while page < end {
            if access.allows(VmProt::WRITE) {
                st.grant_write(session, page, false);
            } else {
                st.serve_read(session, page);
            }
            page += PAGE;
        }
    }

    fn data_unlock(
        &mut self,
        kernel: &KernelConn,
        _object: u64,
        offset: u64,
        length: u64,
        access: VmProt,
    ) {
        let mut st = self.state.lock();
        let Some(session) = st
            .sessions
            .iter()
            .position(|s| s.conn.request_port().same_port(kernel.request_port()))
        else {
            return;
        };
        let mut page = offset - offset % PAGE;
        let end = offset + length;
        while page < end {
            if access.allows(VmProt::WRITE) {
                st.unlock_negotiations += 1;
                st.grant_write(session, page, true);
            }
            page += PAGE;
        }
    }

    fn data_write(&mut self, kernel: &KernelConn, object: u64, offset: u64, data: OolBuffer) {
        let mut st = self.state.lock();
        let session = st
            .sessions
            .iter()
            .position(|s| s.conn.request_port().same_port(kernel.request_port()));
        // Update the master copy.
        let page = (offset - offset % PAGE) as usize;
        let n = data.len().min(st.data.len().saturating_sub(page));
        let slice = data.as_slice()[..n].to_vec();
        st.data[page..page + n].copy_from_slice(&slice);
        if let Some(session) = session {
            let page_state = st.page(offset);
            if page_state.writer == Some(session) {
                page_state.writer = None;
            }
            // The writer's data is home: serve queued readers.
            let pending: Vec<usize> = st.page(offset).pending_reads.drain(..).collect();
            for reader in pending {
                st.serve_read(reader, offset);
            }
        }
        kernel.release_laundry(object, data.len() as u64);
    }

    fn kernel_detached(&mut self, _port: u64) {
        // Keep sessions; a full implementation would garbage collect.
    }
}

/// A consistent network shared memory service.
pub struct SharedMemoryServer {
    state: Arc<Mutex<ServerState>>,
    handle: ManagerHandle,
    fabric: Arc<Fabric>,
    server_host: Arc<Host>,
    /// Proxies keeping remote attachments alive.
    proxies: Mutex<Vec<ProxyHandle>>,
    size: u64,
}

impl fmt::Debug for SharedMemoryServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedMemoryServer({} bytes)", self.size)
    }
}

impl SharedMemoryServer {
    /// Starts a shared memory service of `size` bytes on `server_host`.
    pub fn start(fabric: &Arc<Fabric>, server_host: &Arc<Host>, size: u64) -> Arc<Self> {
        Self::start_with_policy(fabric, server_host, size, GrantPolicy::ReadLocked)
    }

    /// Starts the service with an explicit grant policy (footnote 9).
    pub fn start_with_policy(
        fabric: &Arc<Fabric>,
        server_host: &Arc<Host>,
        size: u64,
        policy: GrantPolicy,
    ) -> Arc<Self> {
        let state = Arc::new(Mutex::new(ServerState {
            policy,
            unlock_negotiations: 0,
            data: vec![0u8; size as usize],
            sessions: Vec::new(),
            pages: HashMap::new(),
            invalidations: 0,
            demotions: 0,
        }));
        let handle = spawn_manager(
            server_host.machine(),
            "netshm",
            ShmManager {
                state: state.clone(),
            },
        );
        Arc::new(SharedMemoryServer {
            state,
            handle,
            fabric: fabric.clone(),
            server_host: server_host.clone(),
            proxies: Mutex::new(Vec::new()),
            size,
        })
    }

    /// The memory object port (local to the server's host).
    pub fn port(&self) -> &SendRight {
        self.handle.port()
    }

    /// Region size.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Maps the shared region into `task`, which runs on `client_host`.
    ///
    /// Remote clients reach the memory object through a network message
    /// server proxy, so all pager traffic is charged as network traffic.
    pub fn attach(&self, task: &Task, client_host: &Arc<Host>) -> Result<u64, VmError> {
        let port = self.handle.port().clone();
        let port = if client_host.id() == self.server_host.id() {
            port
        } else {
            let proxy = self.fabric.proxy(client_host, &self.server_host, port);
            let p = proxy.port().clone();
            self.proxies.lock().push(proxy);
            p
        };
        let sessions_before = self.state.lock().sessions.len();
        let addr = task.vm_allocate_with_pager(None, self.size, &port, 0)?;
        // pager_init travels asynchronously (possibly through a proxy);
        // wait for the session so later attaches see ordered host slots,
        // and for the single-page cluster attribute the server sends
        // during init — the stand-in for real Mach's kernel blocking new
        // mappings until `memory_object_set_attributes` arrives. Faulting
        // before it lands would cluster-prefetch pages this server tracks
        // per client.
        let object = task.kernel().object_for_port(&port, self.size);
        for _ in 0..500 {
            if self.state.lock().sessions.len() > sessions_before && object.cluster_hint() == 1 {
                break;
            }
            machsim::wall::sleep(std::time::Duration::from_millis(2));
        }
        Ok(addr)
    }

    /// (invalidations sent, writer demotions) — coherence traffic counters.
    pub fn coherence_counters(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.invalidations, st.demotions)
    }

    /// Write-unlock negotiations the server has performed.
    pub fn unlock_negotiations(&self) -> u64 {
        self.state.lock().unlock_negotiations
    }

    /// Reads the master copy (for assertions).
    pub fn master_copy(&self, offset: u64, len: usize) -> Vec<u8> {
        let st = self.state.lock();
        st.data[offset as usize..offset as usize + len].to_vec()
    }
}

/// RPC: look up (or create) a shared region by name; the reply carries
/// the memory object port — "the shared memory server finds the memory
/// object, X, and returns it" (Section 4.2).
pub const SHM_LOOKUP: u32 = 0x4B01;
/// Success reply.
pub const SHM_OK: u32 = 0x4B80;
/// Failure reply.
pub const SHM_ERR: u32 = 0x4B81;
const SHM_SHUTDOWN: u32 = 0x4BFF;

/// The Section 4.2 front door: a directory of named shared memory regions.
///
/// "In our example, the first client has made a request for a shared
/// memory region not in use by any other client. The shared memory server
/// creates a memory object (i.e., allocates a port) to refer to this
/// region and returns that memory object, X, to the first client. The
/// second client, running on a different host, later makes a request for
/// the same shared memory region. The shared memory server finds the
/// memory object, X, and returns it to the second client."
///
/// Remote clients call [`ShmDirectory::request`] through the fabric; the
/// network message server's right rewriting delivers them a proxied
/// memory object port, so mapping it runs the whole pager protocol over
/// the network with no further ceremony.
pub struct ShmDirectory {
    port: SendRight,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl fmt::Debug for ShmDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShmDirectory({:?})", self.port)
    }
}

impl ShmDirectory {
    /// Starts a directory of shared regions on `server_host`.
    pub fn start(
        fabric: &Arc<Fabric>,
        server_host: &Arc<Host>,
        policy: GrantPolicy,
    ) -> Arc<ShmDirectory> {
        let (rx, tx) = machipc::ReceiveRight::allocate(server_host.machine());
        rx.set_backlog(1024);
        let fabric = fabric.clone();
        let server_host = server_host.clone();
        let thread = std::thread::Builder::new()
            .name("shm-directory".into())
            .spawn(move || {
                let mut regions: HashMap<String, Arc<SharedMemoryServer>> = HashMap::new();
                loop {
                    let Ok(msg) = rx.receive(None) else { break };
                    let reply = |m: machipc::Message| {
                        if let Some(r) = &msg.reply {
                            let _ = r.send(m, Some(std::time::Duration::from_secs(5)));
                        }
                    };
                    match msg.id {
                        SHM_LOOKUP => {
                            let name = msg
                                .body
                                .iter()
                                .find_map(|i| i.as_bytes())
                                .map(|b| String::from_utf8_lossy(b).to_string());
                            let size = msg
                                .body
                                .iter()
                                .find_map(|i| i.as_u64s())
                                .and_then(|v| v.first().copied());
                            match (name, size) {
                                (Some(name), Some(size)) if size > 0 => {
                                    let region = regions.entry(name).or_insert_with(|| {
                                        SharedMemoryServer::start_with_policy(
                                            &fabric,
                                            &server_host,
                                            size,
                                            policy,
                                        )
                                    });
                                    reply(
                                        machipc::Message::new(SHM_OK)
                                            .with(machipc::MsgItem::u64s(&[region.size()]))
                                            .with(machipc::MsgItem::SendRights(vec![region
                                                .port()
                                                .clone()])),
                                    );
                                }
                                _ => reply(machipc::Message::new(SHM_ERR)),
                            }
                        }
                        SHM_SHUTDOWN => break,
                        _ => reply(machipc::Message::new(SHM_ERR)),
                    }
                }
            })
            .expect("spawn shm directory");
        Arc::new(ShmDirectory {
            port: tx,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// The directory's RPC port (reachable through the fabric by remote
    /// clients).
    pub fn port(&self) -> &SendRight {
        &self.port
    }

    /// Client side: requests the region `name` (created with `size` bytes
    /// on first use) and maps it into `task`. `server_host` is where the
    /// directory runs; traffic from a different `client_host` rides the
    /// fabric. Returns `(address, size)`.
    pub fn request(
        fabric: &Arc<Fabric>,
        directory: &SendRight,
        server_host: &Arc<Host>,
        client_host: &Arc<Host>,
        task: &Task,
        name: &str,
        size: u64,
    ) -> Result<(u64, u64), VmError> {
        let msg = machipc::Message::new(SHM_LOOKUP)
            .with(machipc::MsgItem::bytes(name.as_bytes().to_vec()))
            .with(machipc::MsgItem::u64s(&[size]));
        let reply = if client_host.id() == server_host.id() {
            directory
                .rpc(
                    msg,
                    Some(std::time::Duration::from_secs(10)),
                    Some(std::time::Duration::from_secs(10)),
                )
                .map_err(|_| VmError::ObjectDestroyed)?
        } else {
            fabric
                .rpc(
                    client_host,
                    server_host,
                    directory,
                    msg,
                    Some(std::time::Duration::from_secs(10)),
                )
                .map_err(|_| VmError::ObjectDestroyed)?
        };
        if reply.id != SHM_OK {
            return Err(VmError::ObjectDestroyed);
        }
        let actual = reply.body[0].as_u64s().ok_or(VmError::ObjectDestroyed)?[0];
        let machipc::MsgItem::SendRights(rights) = &reply.body[1] else {
            return Err(VmError::ObjectDestroyed);
        };
        // When the client is remote the fabric rewrote the right into a
        // local proxy; either way, map it.
        let addr = task.vm_allocate_with_pager(None, actual, &rights[0], 0)?;
        Ok((addr, actual))
    }
}

impl Drop for ShmDirectory {
    fn drop(&mut self) {
        self.port
            .send_notification(machipc::Message::new(SHM_SHUTDOWN));
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machcore::{Kernel, KernelConfig};
    use machsim::stats::keys;
    use std::time::Duration;

    /// One booted client host of the two-host rig.
    type Client = (Arc<Host>, Arc<Kernel>, Arc<Task>);

    /// Two kernels on two fabric hosts sharing one region.
    fn setup(
        size: u64,
    ) -> (
        Arc<Fabric>,
        Client,
        Client,
        Arc<SharedMemoryServer>,
        (u64, u64),
    ) {
        let fabric = Fabric::new();
        let server_host = fabric.add_host("server");
        let host_a = fabric.add_host("alpha");
        let host_b = fabric.add_host("beta");
        let kernel_a = Kernel::boot_on(host_a.machine().clone(), KernelConfig::default());
        let kernel_b = Kernel::boot_on(host_b.machine().clone(), KernelConfig::default());
        let task_a = Task::create(&kernel_a, "client-a");
        let task_b = Task::create(&kernel_b, "client-b");
        let server = SharedMemoryServer::start(&fabric, &server_host, size);
        let addr_a = server.attach(&task_a, &host_a).unwrap();
        let addr_b = server.attach(&task_b, &host_b).unwrap();
        (
            fabric,
            (host_a, kernel_a, task_a),
            (host_b, kernel_b, task_b),
            server,
            (addr_a, addr_b),
        )
    }

    fn eventually(mut f: impl FnMut() -> bool) -> bool {
        for _ in 0..200 {
            if f() {
                return true;
            }
            machsim::wall::sleep(Duration::from_millis(10));
        }
        false
    }

    #[test]
    fn both_clients_read_the_same_page() {
        let (_f, (_ha, _ka, ta), (_hb, _kb, tb), server, (aa, ab)) = setup(4 * PAGE);
        let mut buf = [0u8; 4];
        ta.read_memory(aa, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 4]);
        tb.read_memory(ab, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 4]);
        let (inv, dem) = server.coherence_counters();
        assert_eq!((inv, dem), (0, 0), "pure reading causes no invalidations");
    }

    #[test]
    fn write_fault_invalidates_readers_and_propagates() {
        let (_f, (_ha, _ka, ta), (_hb, _kb, tb), server, (aa, ab)) = setup(4 * PAGE);
        let mut buf = [0u8; 5];
        // Both read the first page (read-locked, two readers).
        ta.read_memory(aa, &mut buf).unwrap();
        tb.read_memory(ab, &mut buf).unwrap();
        // A writes: kernel A sends data_unlock; the server flushes B and
        // grants A write access.
        ta.write_memory(aa, b"hello").unwrap();
        let (inv, _dem) = server.coherence_counters();
        assert!(inv >= 1, "B was invalidated");
        // B reads again: the server demotes A (flush) and serves B the
        // fresh data once A's page comes home.
        assert!(eventually(|| {
            let mut b = [0u8; 5];
            tb.read_memory(ab, &mut b).is_ok() && &b == b"hello"
        }));
        let (_inv, dem) = server.coherence_counters();
        assert!(dem >= 1, "writer demoted to reader");
        assert_eq!(server.master_copy(0, 5), b"hello");
    }

    #[test]
    fn ping_pong_alternating_writers() {
        let (_f, (_ha, _ka, ta), (_hb, _kb, tb), _server, (aa, ab)) = setup(4 * PAGE);
        for round in 0..5u8 {
            ta.write_memory(aa, &[round * 2]).unwrap();
            assert!(eventually(|| {
                let mut b = [0u8; 1];
                tb.read_memory(ab, &mut b).is_ok() && b[0] == round * 2
            }));
            tb.write_memory(ab, &[round * 2 + 1]).unwrap();
            assert!(eventually(|| {
                let mut b = [0u8; 1];
                ta.read_memory(aa, &mut b).is_ok() && b[0] == round * 2 + 1
            }));
        }
    }

    #[test]
    fn different_pages_do_not_interfere() {
        let (_f, (_ha, _ka, ta), (_hb, _kb, tb), server, (aa, ab)) = setup(4 * PAGE);
        ta.write_memory(aa, &[1]).unwrap();
        tb.write_memory(ab + PAGE, &[2]).unwrap();
        let (inv, _) = server.coherence_counters();
        assert_eq!(
            inv, 0,
            "writes to different pages cause no coherence traffic"
        );
    }

    /// Builds a single-kernel, single-client setup with a given policy.
    fn one_client(policy: GrantPolicy) -> (Arc<SharedMemoryServer>, Arc<Task>, u64) {
        let fabric = Fabric::new();
        let hs = fabric.add_host("server");
        let ha = fabric.add_host("alpha");
        let ka = Kernel::boot_on(ha.machine().clone(), KernelConfig::default());
        let ta = Task::create(&ka, "solo");
        let server = SharedMemoryServer::start_with_policy(&fabric, &hs, 2 * PAGE, policy);
        let addr = server.attach(&ta, &ha).unwrap();
        std::mem::forget(ka);
        (server, ta, addr)
    }

    #[test]
    fn write_first_policy_skips_unlock_negotiation() {
        // Footnote 9: granting the sole client write access up front saves
        // the data_unlock round trip the ReadLocked policy pays.
        let (server_rl, task_rl, addr_rl) = one_client(GrantPolicy::ReadLocked);
        let mut b = [0u8; 1];
        task_rl.read_memory(addr_rl, &mut b).unwrap();
        task_rl.write_memory(addr_rl, &[1]).unwrap();
        assert!(server_rl.unlock_negotiations() >= 1);

        let (server_wf, task_wf, addr_wf) = one_client(GrantPolicy::WriteFirst);
        task_wf.read_memory(addr_wf, &mut b).unwrap();
        task_wf.write_memory(addr_wf, &[1]).unwrap();
        assert_eq!(server_wf.unlock_negotiations(), 0);
    }

    #[test]
    fn write_first_is_revoked_when_second_client_reads() {
        let fabric = Fabric::new();
        let hs = fabric.add_host("server");
        let ha = fabric.add_host("alpha");
        let hb = fabric.add_host("beta");
        let ka = Kernel::boot_on(ha.machine().clone(), KernelConfig::default());
        let kb = Kernel::boot_on(hb.machine().clone(), KernelConfig::default());
        let ta = Task::create(&ka, "a");
        let tb = Task::create(&kb, "b");
        let server =
            SharedMemoryServer::start_with_policy(&fabric, &hs, 2 * PAGE, GrantPolicy::WriteFirst);
        let aa = server.attach(&ta, &ha).unwrap();
        let ab = server.attach(&tb, &hb).unwrap();
        // A reads: optimistically granted write access, then writes freely.
        let mut b = [0u8; 1];
        ta.read_memory(aa, &mut b).unwrap();
        ta.write_memory(aa, &[0x77]).unwrap();
        assert_eq!(server.unlock_negotiations(), 0);
        // B shows up: A is revoked (demoted), B sees the data.
        assert!(eventually(|| {
            let mut bb = [0u8; 1];
            tb.read_memory(ab, &mut bb).is_ok() && bb[0] == 0x77
        }));
        let (_inv, dem) = server.coherence_counters();
        assert!(dem >= 1, "optimistic writer was demoted");
    }

    #[test]
    fn three_clients_converge_on_one_page() {
        let fabric = Fabric::new();
        let hs = fabric.add_host("server");
        let hosts: Vec<_> = (0..3).map(|i| fabric.add_host(&format!("h{i}"))).collect();
        let kernels: Vec<_> = hosts
            .iter()
            .map(|h| Kernel::boot_on(h.machine().clone(), KernelConfig::default()))
            .collect();
        let tasks: Vec<_> = kernels
            .iter()
            .enumerate()
            .map(|(i, k)| Task::create(k, &format!("t{i}")))
            .collect();
        let server = SharedMemoryServer::start(&fabric, &hs, 2 * PAGE);
        let addrs: Vec<u64> = tasks
            .iter()
            .zip(hosts.iter())
            .map(|(t, h)| server.attach(t, h).unwrap())
            .collect();
        // Each client writes in turn; all three must observe each value.
        for (round, writer) in [(1u8, 0usize), (2, 1), (3, 2)] {
            tasks[writer].write_memory(addrs[writer], &[round]).unwrap();
            for (t, &a) in tasks.iter().zip(addrs.iter()) {
                assert!(
                    eventually(|| {
                        let mut bb = [0u8; 1];
                        t.read_memory(a, &mut bb).is_ok() && bb[0] == round
                    }),
                    "client failed to observe round {round}"
                );
            }
        }
    }

    #[test]
    fn remote_traffic_is_charged_to_the_network() {
        let (_f, (ha, _ka, ta), _b, _server, (aa, _ab)) = setup(4 * PAGE);
        let before = ha.machine().stats.get(keys::NET_MESSAGES);
        let mut buf = [0u8; 1];
        ta.read_memory(aa, &mut buf).unwrap();
        assert!(
            ha.machine().stats.get(keys::NET_MESSAGES) > before,
            "page fetch crossed the network"
        );
    }

    #[test]
    fn locality_determines_coherence_traffic() {
        // The Li result the paper cites: efficiency "depends on the extent
        // to which they exhibit read/write locality". Partitioned pages:
        // no traffic; contended page: traffic per alternation.
        let (_f, a, b, server, (aa, ab)) = setup(8 * PAGE);
        let (_, _, ta) = a;
        let (_, _, tb) = b;
        // Phase 1: disjoint working sets.
        for i in 0..4u64 {
            ta.write_memory(aa + i * PAGE, &[1]).unwrap();
            tb.write_memory(ab + (4 + i) * PAGE, &[2]).unwrap();
        }
        let (inv_disjoint, _) = server.coherence_counters();
        assert_eq!(inv_disjoint, 0);
        // Phase 2: shared hot page.
        for round in 0..4u8 {
            ta.write_memory(aa, &[round]).unwrap();
            assert!(eventually(|| {
                let mut bb = [0u8; 1];
                tb.read_memory(ab, &mut bb).is_ok() && bb[0] == round
            }));
        }
        let (inv_contended, _) = server.coherence_counters();
        assert!(
            inv_contended >= 3,
            "contention produced invalidations: {inv_contended}"
        );
    }

    #[test]
    fn directory_serves_the_same_region_to_both_clients() {
        // The paper's opening flow: client one requests a region by name
        // (created), client two — on a different host — requests the same
        // name and receives the same memory object X.
        let fabric = Fabric::new();
        let hs = fabric.add_host("server");
        let ha = fabric.add_host("alpha");
        let hb = fabric.add_host("beta");
        let ka = Kernel::boot_on(ha.machine().clone(), KernelConfig::default());
        let kb = Kernel::boot_on(hb.machine().clone(), KernelConfig::default());
        let ta = Task::create(&ka, "one");
        let tb = Task::create(&kb, "two");
        let dir = ShmDirectory::start(&fabric, &hs, GrantPolicy::ReadLocked);
        let (aa, size_a) =
            ShmDirectory::request(&fabric, dir.port(), &hs, &ha, &ta, "blackboard", 4 * PAGE)
                .unwrap();
        let (ab, size_b) =
            ShmDirectory::request(&fabric, dir.port(), &hs, &hb, &tb, "blackboard", 4 * PAGE)
                .unwrap();
        assert_eq!(size_a, 4 * PAGE);
        assert_eq!(size_b, 4 * PAGE);
        // Same region: a write by one is (eventually) read by the other.
        ta.write_memory(aa, b"shared by name").unwrap();
        assert!(eventually(|| {
            let mut b = [0u8; 14];
            tb.read_memory(ab, &mut b).is_ok() && &b == b"shared by name"
        }));
    }

    #[test]
    fn directory_isolates_different_names() {
        let fabric = Fabric::new();
        let hs = fabric.add_host("server");
        let ha = fabric.add_host("alpha");
        let ka = Kernel::boot_on(ha.machine().clone(), KernelConfig::default());
        let t = Task::create(&ka, "t");
        let dir = ShmDirectory::start(&fabric, &hs, GrantPolicy::ReadLocked);
        let (a1, _) =
            ShmDirectory::request(&fabric, dir.port(), &hs, &ha, &t, "one", 2 * PAGE).unwrap();
        let (a2, _) =
            ShmDirectory::request(&fabric, dir.port(), &hs, &ha, &t, "two", 2 * PAGE).unwrap();
        t.write_memory(a1, &[0xAA]).unwrap();
        // Region "two" is untouched.
        let mut b = [0u8; 1];
        t.read_memory(a2, &mut b).unwrap();
        assert_eq!(b[0], 0);
    }
}
