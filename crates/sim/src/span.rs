//! Span reconstruction and critical-path attribution.
//!
//! The trace ring ([`crate::trace`]) records flat point events; this
//! module rebuilds the *structure* the paper's evaluation needs: each
//! fault chain as a tree of named phase spans (submit → park → pager
//! service → reply → resume → pmap enter), and an attribution of the
//! chain's end-to-end sim-time to those phases. The attribution rule is
//! "innermost wins": at every instant of the root span's window the time
//! is charged to the deepest open span covering it, so phase self-times
//! tile the window exactly and coverage is total by construction —
//! whatever the root does not delegate to a child is its own self-time.
//!
//! Cross-host spans (a `net.hop` opens on one host's clock and closes on
//! another's) are kept for tree-connectivity checks but excluded from
//! time attribution: subtracting timestamps from two independent
//! simulated clocks would be meaningless.

use crate::trace::{CorrelationId, EventKind, Histogram, TraceEvent};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;

/// One reconstructed span: an open event paired with its close.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span id (0 = chain root).
    pub parent: u64,
    /// Phase name (the `SpanOpen` literal).
    pub name: &'static str,
    /// Causal chain the span belongs to, if any.
    pub correlation: Option<CorrelationId>,
    /// Sim-time of the open event on its host.
    pub open_ns: u64,
    /// Sim-time of the close event, if one was recorded.
    pub close_ns: Option<u64>,
    /// Host that opened the span.
    pub open_host: Arc<str>,
    /// Host that closed the span (differs from `open_host` for network
    /// hops).
    pub close_host: Option<Arc<str>>,
}

impl SpanRecord {
    /// Whether open and close happened on different hosts' clocks.
    pub fn is_cross_host(&self) -> bool {
        self.close_host
            .as_ref()
            .is_some_and(|h| **h != *self.open_host)
    }

    /// Close-minus-open duration, when closed on the opening host.
    pub fn duration_ns(&self) -> Option<u64> {
        if self.is_cross_host() {
            return None;
        }
        self.close_ns.map(|c| c.saturating_sub(self.open_ns))
    }
}

/// Pairs every `SpanOpen`/`SpanClose` event in `events` into
/// [`SpanRecord`]s, in open order.
///
/// A close whose open fell off the ring is dropped; an open with no close
/// yields a record with `close_ns == None`. Feed this the *merged*
/// snapshots of every host involved in a chain so cross-host spans pair
/// up.
pub fn collect(events: &[TraceEvent]) -> Vec<SpanRecord> {
    let mut by_id: HashMap<u64, usize> = HashMap::new();
    let mut out: Vec<SpanRecord> = Vec::new();
    for e in events {
        match (e.kind, e.span) {
            (EventKind::SpanOpen(name), Some(info)) => {
                by_id.insert(info.id, out.len());
                out.push(SpanRecord {
                    id: info.id,
                    parent: info.parent,
                    name,
                    correlation: e.correlation_id,
                    open_ns: e.ts_ns,
                    close_ns: None,
                    open_host: e.host.clone(),
                    close_host: None,
                });
            }
            (EventKind::SpanClose(_), Some(info)) => {
                if let Some(&i) = by_id.get(&info.id) {
                    out[i].close_ns = Some(e.ts_ns);
                    out[i].close_host = Some(e.host.clone());
                }
            }
            _ => {}
        }
    }
    out.sort_by_key(|s| (s.open_ns, s.id));
    out
}

/// Where one chain's end-to-end sim-time went, by phase name.
#[derive(Clone, Debug)]
pub struct ChainAttribution {
    /// The chain attributed.
    pub cid: CorrelationId,
    /// Root span id.
    pub root: u64,
    /// Root phase name (normally `fault.submit`).
    pub root_name: &'static str,
    /// Root close minus root open: the chain's end-to-end sim-time.
    pub total_ns: u64,
    /// Sim-time attributed to named phases (equals `total_ns` unless the
    /// chain is degenerate).
    pub attributed_ns: u64,
    /// Per-phase *self*-time — time a phase was the innermost open span.
    pub phases: BTreeMap<&'static str, u64>,
}

impl ChainAttribution {
    /// Fraction of the chain's end-to-end time attributed to named
    /// phases (1.0 for an empty-window chain).
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            1.0
        } else {
            self.attributed_ns as f64 / self.total_ns as f64
        }
    }
}

/// Attributes one chain's time to phases. `spans` is every span of the
/// chain; returns `None` when the chain has no closed same-host root.
pub fn attribute_chain(cid: CorrelationId, spans: &[SpanRecord]) -> Option<ChainAttribution> {
    let root = spans
        .iter()
        .filter(|s| s.parent == 0 && s.close_ns.is_some() && !s.is_cross_host())
        .min_by_key(|s| (s.open_ns, s.id))?;
    let (lo, hi) = (root.open_ns, root.close_ns.unwrap_or(root.open_ns));
    let total_ns = hi - lo;

    // Usable for timing: closed, on the root host's clock, clipped to the
    // root window. Self-times come from a boundary sweep where the
    // deepest covering span wins each elementary interval.
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let depth_of = |mut id: u64| {
        let mut d = 0usize;
        while let Some(s) = by_id.get(&id) {
            if s.parent == 0 || d > spans.len() {
                break;
            }
            d += 1;
            id = s.parent;
        }
        d
    };
    struct Clipped<'a> {
        span: &'a SpanRecord,
        lo: u64,
        hi: u64,
        depth: usize,
    }
    let usable: Vec<Clipped<'_>> = spans
        .iter()
        .filter(|s| s.close_ns.is_some() && !s.is_cross_host() && *s.open_host == *root.open_host)
        .map(|s| Clipped {
            span: s,
            lo: s.open_ns.clamp(lo, hi),
            hi: s.close_ns.unwrap_or(s.open_ns).clamp(lo, hi),
            depth: depth_of(s.id),
        })
        .collect();

    let mut phases: BTreeMap<&'static str, u64> = BTreeMap::new();
    for c in &usable {
        phases.entry(c.span.name).or_insert(0);
    }
    let mut bounds: Vec<u64> = usable.iter().flat_map(|c| [c.lo, c.hi]).collect();
    bounds.sort_unstable();
    bounds.dedup();
    let mut attributed_ns = 0u64;
    for w in bounds.windows(2) {
        let (t1, t2) = (w[0], w[1]);
        let winner = usable
            .iter()
            .filter(|c| c.lo <= t1 && c.hi >= t2)
            .max_by_key(|c| (c.depth, c.span.open_ns, c.span.id));
        if let Some(c) = winner {
            *phases.entry(c.span.name).or_insert(0) += t2 - t1;
            attributed_ns += t2 - t1;
        }
    }
    Some(ChainAttribution {
        cid,
        root: root.id,
        root_name: root.name,
        total_ns,
        attributed_ns,
        phases,
    })
}

/// Structural check for one chain's span tree: exactly one root and no
/// orphans (every non-root parent id resolves within the chain).
///
/// Cross-host spans participate — this is the guarantee the netmsgserver
/// propagation test asserts: a proxied fault still forms one connected
/// tree.
pub fn validate_chain_tree(spans: &[SpanRecord]) -> Result<(), String> {
    if spans.is_empty() {
        return Err("chain has no spans".into());
    }
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent == 0).collect();
    if roots.len() != 1 {
        return Err(format!(
            "expected exactly one root span, found {}: {:?}",
            roots.len(),
            roots.iter().map(|s| s.name).collect::<Vec<_>>()
        ));
    }
    for s in spans {
        if s.parent != 0 && !ids.contains(&s.parent) {
            return Err(format!(
                "orphan span {} (id {}): parent {} not in chain",
                s.name, s.id, s.parent
            ));
        }
    }
    Ok(())
}

/// Aggregated critical-path profile over every chain in a trace.
#[derive(Debug, Default)]
pub struct CriticalPathReport {
    /// Per-chain attributions, in chain (root-open) order.
    pub chains: Vec<ChainAttribution>,
    /// Chains skipped for lack of a closed root (still in flight, or the
    /// ring dropped their boundary events).
    pub skipped: usize,
    /// Spans opened but never closed (diagnostic for ring sizing).
    pub unclosed: usize,
    /// Per-phase self-time histograms, one sample per chain.
    pub phase_ns: BTreeMap<&'static str, Histogram>,
    /// End-to-end chain time histogram, one sample per chain.
    pub total_ns: Histogram,
}

impl CriticalPathReport {
    /// Smallest per-chain coverage seen (1.0 when no chains).
    pub fn min_coverage(&self) -> f64 {
        self.chains
            .iter()
            .map(ChainAttribution::coverage)
            .fold(1.0, f64::min)
    }

    /// Renders the per-phase breakdown as a text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let grand: u64 = self.chains.iter().map(|c| c.total_ns).sum();
        let _ = writeln!(
            out,
            "critical path: {} chains attributed, {} skipped, {} unclosed spans, min coverage {:.1}%",
            self.chains.len(),
            self.skipped,
            self.unclosed,
            self.min_coverage() * 100.0
        );
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>12} {:>12} {:>12} {:>7}",
            "phase", "chains", "mean self ns", "p99 self ns", "total ns", "share"
        );
        for (name, h) in &self.phase_ns {
            let share = if grand == 0 {
                0.0
            } else {
                h.sum_ns() as f64 / grand as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "{:<16} {:>7} {:>12} {:>12} {:>12} {:>6.1}%",
                name,
                h.count(),
                h.mean_ns(),
                h.p99_ns(),
                h.sum_ns(),
                share
            );
        }
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>12} {:>12} {:>12} {:>6.1}%",
            "end-to-end",
            self.total_ns.count(),
            self.total_ns.mean_ns(),
            self.total_ns.p99_ns(),
            grand,
            100.0
        );
        out
    }
}

/// Builds the full critical-path profile from raw trace events (merge
/// multiple hosts' snapshots before calling for cross-host chains).
pub fn critical_path(events: &[TraceEvent]) -> CriticalPathReport {
    let spans = collect(events);
    let unclosed = spans.iter().filter(|s| s.close_ns.is_none()).count();
    let mut by_chain: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for s in &spans {
        if let Some(cid) = s.correlation {
            by_chain.entry(cid.raw()).or_default().push(s.clone());
        }
    }
    let mut report = CriticalPathReport {
        unclosed,
        ..Default::default()
    };
    for (raw, chain) in &by_chain {
        let cid = CorrelationId::from_raw(*raw).expect("0 is filtered by `s.correlation`");
        match attribute_chain(cid, chain) {
            Some(attr) => {
                for (name, ns) in &attr.phases {
                    report.phase_ns.entry(name).or_default().record(*ns);
                }
                report.total_ns.record(attr.total_ns);
                report.chains.push(attr);
            }
            None => report.skipped += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanInfo, TraceEvent};

    fn open(
        ts: u64,
        host: &str,
        name: &'static str,
        id: u64,
        parent: u64,
        cid: Option<CorrelationId>,
    ) -> TraceEvent {
        TraceEvent::new(ts, Arc::from(host), name, EventKind::SpanOpen(name), cid)
            .with_span(SpanInfo { id, parent })
    }

    fn close(ts: u64, host: &str, name: &'static str, id: u64) -> TraceEvent {
        TraceEvent::new(ts, Arc::from(host), name, EventKind::SpanClose(name), None)
            .with_span(SpanInfo { id, parent: 0 })
    }

    #[test]
    fn collect_pairs_opens_with_closes() {
        let cid = CorrelationId::allocate();
        let events = vec![
            open(10, "a", "root", 1, 0, Some(cid)),
            open(20, "a", "child", 2, 1, Some(cid)),
            close(30, "a", "child", 2),
            close(40, "a", "root", 1),
            open(50, "a", "dangling", 3, 1, Some(cid)),
        ];
        let spans = collect(&events);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].duration_ns(), Some(30));
        assert_eq!(spans[1].duration_ns(), Some(10));
        assert!(spans[2].close_ns.is_none());
    }

    #[test]
    fn innermost_span_wins_attribution() {
        let cid = CorrelationId::allocate();
        // root [0,100), child [20,60), grandchild [30,40).
        let events = vec![
            open(0, "a", "root", 1, 0, Some(cid)),
            open(20, "a", "child", 2, 1, Some(cid)),
            open(30, "a", "grand", 3, 2, Some(cid)),
            close(40, "a", "grand", 3),
            close(60, "a", "child", 2),
            close(100, "a", "root", 1),
        ];
        let spans = collect(&events);
        let attr = attribute_chain(cid, &spans).expect("closed root");
        assert_eq!(attr.total_ns, 100);
        assert_eq!(attr.attributed_ns, 100, "root tiles its whole window");
        assert!((attr.coverage() - 1.0).abs() < 1e-9);
        assert_eq!(attr.phases["root"], 60); // 0-20 + 60-100
        assert_eq!(attr.phases["child"], 30); // 20-30 + 40-60
        assert_eq!(attr.phases["grand"], 10);
    }

    #[test]
    fn cross_host_spans_connect_but_do_not_count() {
        let cid = CorrelationId::allocate();
        let events = vec![
            open(0, "a", "root", 1, 0, Some(cid)),
            open(5, "a", "net.hop", 2, 1, Some(cid)),
            close(999_999, "b", "net.hop", 2), // host b's clock: meaningless delta
            open(7, "b", "remote", 3, 2, Some(cid)),
            close(9, "b", "remote", 3),
            close(50, "a", "root", 1),
        ];
        let spans = collect(&events);
        assert!(spans.iter().any(SpanRecord::is_cross_host));
        validate_chain_tree(&spans).expect("one connected tree");
        let attr = attribute_chain(cid, &spans).expect("closed root");
        // Only host-a spans count; the hop and the remote work do not.
        assert_eq!(attr.total_ns, 50);
        assert_eq!(attr.phases["root"], 50);
        assert!(!attr.phases.contains_key("net.hop"));
    }

    #[test]
    fn orphans_and_double_roots_are_reported() {
        let cid = CorrelationId::allocate();
        let orphan = collect(&[
            open(0, "a", "root", 1, 0, Some(cid)),
            open(1, "a", "lost", 2, 77, Some(cid)),
        ]);
        assert!(validate_chain_tree(&orphan).unwrap_err().contains("orphan"));
        let two_roots = collect(&[
            open(0, "a", "root", 1, 0, Some(cid)),
            open(1, "a", "root", 2, 0, Some(cid)),
        ]);
        assert!(validate_chain_tree(&two_roots)
            .unwrap_err()
            .contains("exactly one root"));
        assert!(validate_chain_tree(&[]).is_err());
    }

    #[test]
    fn report_aggregates_chains_and_skips_unrooted() {
        let a = CorrelationId::allocate();
        let b = CorrelationId::allocate();
        let events = vec![
            open(0, "h", "root", 1, 0, Some(a)),
            close(10, "h", "root", 1),
            // Chain b: root never closes -> skipped.
            open(5, "h", "root", 2, 0, Some(b)),
        ];
        let r = critical_path(&events);
        assert_eq!(r.chains.len(), 1);
        assert_eq!(r.skipped, 1);
        assert_eq!(r.unclosed, 1);
        assert_eq!(r.total_ns.count(), 1);
        assert!(r.min_coverage() >= 0.95);
        assert!(r.render().contains("root"));
    }
}
