//! Structured event tracing and latency histograms.
//!
//! The paper's evaluation (Section 9) is stated in *causal chains*: a page
//! fault becomes a `pager_data_request` message, which becomes a disk read,
//! which becomes a `pager_data_provided` reply. Flat counters cannot show
//! which hop of that chain went wrong, so this module adds the missing
//! dimension: every interesting step emits a [`TraceEvent`] into a
//! lock-cheap per-machine ring buffer, and all events caused by one fault
//! share one [`CorrelationId`] allocated at fault time.
//!
//! The correlation id travels two ways:
//!
//! * **within a thread** via an implicit thread-local (see
//!   [`CorrelationScope`] and [`current_correlation`]), so storage and
//!   pager code need no extra arguments;
//! * **across threads** by being stamped into every IPC message at send
//!   time and re-adopted by the receiving thread at receive time, so the
//!   chain survives the hop onto a data-manager service thread — or onto
//!   another host entirely, since the network fabric forwards messages
//!   verbatim.
//!
//! Durations between chain hops are aggregated into log-bucket
//! [`Histogram`]s keyed by name in a per-machine [`LatencyRegistry`]
//! (fault-to-resolution, send-to-receive, request-to-fill; see [`keys`]).

use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Well-known latency histogram keys recorded by the stack.
pub mod keys {
    /// Page fault entry to successful resolution (`resolve_page`).
    pub const FAULT_TO_RESOLUTION: &str = "vm.fault_to_resolution";
    /// Message enqueue to dequeue on a port (includes network forwarding
    /// hops, whose proxies re-send through ordinary ports).
    pub const SEND_TO_RECEIVE: &str = "ipc.send_to_receive";
    /// `pager_data_request` issued to the page becoming resident
    /// (`pager_data_provided` installed).
    pub const REQUEST_TO_FILL: &str = "vm.request_to_fill";
    /// A fault continuation parked by the async engine to its resume by
    /// the completion loop (the thread-free span of an async fault).
    pub const PARK_TO_RESUME: &str = "vm.park_to_resume";
}

static NEXT_CORRELATION: AtomicU64 = AtomicU64::new(1);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Identity of one causal chain (one page fault, one RPC, ...).
///
/// Allocated process-wide so chains remain unique across simulated hosts;
/// the raw value `0` is reserved to mean "no correlation" on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CorrelationId(u64);

impl CorrelationId {
    /// Allocates a fresh, process-unique correlation id.
    pub fn allocate() -> Self {
        CorrelationId(NEXT_CORRELATION.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw wire value (never 0 for a real id).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Decodes a wire value; `0` means no correlation.
    pub fn from_raw(raw: u64) -> Option<Self> {
        (raw != 0).then_some(CorrelationId(raw))
    }
}

impl fmt::Display for CorrelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cid#{}", self.0)
    }
}

std::thread_local! {
    static CURRENT_CORRELATION: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The correlation id the current thread is working under, if any.
pub fn current_correlation() -> Option<CorrelationId> {
    CorrelationId::from_raw(CURRENT_CORRELATION.with(|c| c.get()))
}

/// Sets (or clears) the current thread's correlation id.
///
/// Receive paths call this so a service thread adopts the causal context
/// of the message it is handling. Prefer [`CorrelationScope`] where the
/// previous value must be restored.
pub fn set_current_correlation(cid: Option<CorrelationId>) {
    CURRENT_CORRELATION.with(|c| c.set(cid.map_or(0, CorrelationId::raw)));
}

/// RAII guard installing a correlation id on the current thread and
/// restoring the previous one on drop (fault handlers nest under RPCs).
pub struct CorrelationScope {
    previous: u64,
}

impl CorrelationScope {
    /// Enters `cid` for the lifetime of the returned guard.
    pub fn enter(cid: CorrelationId) -> Self {
        let previous = CURRENT_CORRELATION.with(|c| c.replace(cid.raw()));
        CorrelationScope { previous }
    }
}

impl Drop for CorrelationScope {
    fn drop(&mut self) {
        CURRENT_CORRELATION.with(|c| c.set(self.previous));
    }
}

/// Parent/identity annotation carried by span-boundary trace events
/// ([`EventKind::SpanOpen`] / [`EventKind::SpanClose`]).
///
/// Span ids are process-unique like correlation ids; `parent == 0` marks a
/// chain root. The span tree is the *structural* half of causality — which
/// phase contains which — while the correlation id remains the *identity*
/// half (which fault this all belongs to).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanInfo {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a chain root.
    pub parent: u64,
}

/// Allocates a fresh, process-unique span id (never 0).
pub fn allocate_span_id() -> u64 {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

std::thread_local! {
    static CURRENT_SPAN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The raw span id the current thread is working under (0 = none).
pub fn current_span() -> u64 {
    CURRENT_SPAN.with(|c| c.get())
}

/// Sets (or clears with 0) the current thread's span id.
///
/// Receive and resume paths call this together with
/// [`set_current_correlation`] so the (correlation, span) pair stays
/// consistent — a thread's ambient span is only meaningful for the chain
/// it is currently working on.
pub fn set_current_span(raw: u64) {
    CURRENT_SPAN.with(|c| c.set(raw));
}

/// The current thread's span id, but only if the thread is working under
/// correlation `cid_raw` — otherwise 0.
///
/// Span parents must stay chain-consistent: adopting the ambient span
/// while stamping a *different* chain's message would graft that chain's
/// subtree onto a foreign parent (an orphan in its own tree). Callers
/// stamping a message whose correlation is already decided use this
/// instead of [`current_span`].
pub fn ambient_span_for(cid_raw: u64) -> u64 {
    if cid_raw != 0 && CURRENT_CORRELATION.with(|c| c.get()) == cid_raw {
        current_span()
    } else {
        0
    }
}

/// RAII guard installing a span id on the current thread and restoring
/// the previous one on drop (mirrors [`CorrelationScope`]).
pub struct SpanScope {
    previous: u64,
}

impl SpanScope {
    /// Enters span `raw` for the lifetime of the returned guard.
    pub fn enter(raw: u64) -> Self {
        let previous = CURRENT_SPAN.with(|c| c.replace(raw));
        SpanScope { previous }
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        CURRENT_SPAN.with(|c| c.set(self.previous));
    }
}

/// What kind of step a trace event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A page fault entered `resolve_page`.
    Fault,
    /// A page fault resolved and the faulting thread resumes.
    Resume,
    /// A message was enqueued on a port.
    MsgSend,
    /// A message was dequeued from a port.
    MsgRecv,
    /// A data manager began handling `pager_data_request`.
    DataRequest,
    /// Supplied data (`pager_data_provided`) was installed in memory.
    DataProvided,
    /// A block device read.
    DiskRead,
    /// A block device write.
    DiskWrite,
    /// A message left a host over the network fabric.
    NetSend,
    /// A message arrived at a host over the network fabric.
    NetRecv,
    /// The stall watchdog flagged an in-flight chain as wedged.
    WatchdogStall,
    /// A free-form annotation from a component (pager internals etc.).
    Mark(&'static str),
    /// A named phase span opened (the event carries [`SpanInfo`]).
    SpanOpen(&'static str),
    /// A named phase span closed (the event carries [`SpanInfo`]).
    SpanClose(&'static str),
}

impl EventKind {
    /// Whether this kind is one of the six canonical fault-chain
    /// milestones (`fault → msg_send → data_request → disk_read →
    /// data_provided → resume`).
    pub fn is_milestone(self) -> bool {
        matches!(
            self,
            EventKind::Fault
                | EventKind::MsgSend
                | EventKind::DataRequest
                | EventKind::DiskRead
                | EventKind::DataProvided
                | EventKind::Resume
        )
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::Fault => "fault",
            EventKind::Resume => "resume",
            EventKind::MsgSend => "msg_send",
            EventKind::MsgRecv => "msg_recv",
            EventKind::DataRequest => "data_request",
            EventKind::DataProvided => "data_provided",
            EventKind::DiskRead => "disk_read",
            EventKind::DiskWrite => "disk_write",
            EventKind::NetSend => "net_send",
            EventKind::NetRecv => "net_recv",
            EventKind::WatchdogStall => "watchdog_stall",
            EventKind::Mark(s) => s,
            // No tabs or newlines: these strings travel through the
            // line-oriented introspection wire format.
            EventKind::SpanOpen(s) => return write!(f, "{s}:open"),
            EventKind::SpanClose(s) => return write!(f, "{s}:close"),
        };
        f.write_str(s)
    }
}

/// One structured trace event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Process-wide sequence number: a total order consistent with
    /// causality even across hosts whose clocks differ.
    pub seq: u64,
    /// Simulated time on the emitting host.
    pub ts_ns: u64,
    /// Name of the emitting host.
    pub host: Arc<str>,
    /// The component that emitted the event ("vm.fault", "port#3",
    /// "pager.fs-db", "disk", ...).
    pub actor: String,
    /// What happened.
    pub kind: EventKind,
    /// The causal chain this event belongs to, if any.
    pub correlation_id: Option<CorrelationId>,
    /// Span identity/parent, present only on span-boundary events.
    pub span: Option<SpanInfo>,
}

impl TraceEvent {
    /// Builds an event stamped with the next global sequence number.
    pub fn new(
        ts_ns: u64,
        host: Arc<str>,
        actor: impl Into<String>,
        kind: EventKind,
        correlation_id: Option<CorrelationId>,
    ) -> Self {
        TraceEvent {
            seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
            ts_ns,
            host,
            actor: actor.into(),
            kind,
            correlation_id,
            span: None,
        }
    }

    /// Attaches span identity to a span-boundary event.
    pub fn with_span(mut self, span: SpanInfo) -> Self {
        self.span = Some(span);
        self
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10} ns] {:<12} {:<20} {}",
            self.ts_ns, self.host, self.actor, self.kind
        )?;
        if let Some(cid) = self.correlation_id {
            write!(f, " {cid}")?;
        }
        Ok(())
    }
}

/// Default ring capacity of a [`TraceBuffer`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A bounded ring buffer of trace events.
///
/// Recording is lock-cheap: one relaxed atomic load when tracing is
/// disabled, one short mutex-protected ring push when enabled. The oldest
/// events are overwritten when the ring is full ([`TraceBuffer::dropped`]
/// counts them), so tracing can stay on permanently.
pub struct TraceBuffer {
    enabled: AtomicBool,
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TraceBuffer({}/{} events)",
            self.events.lock().len(),
            self.capacity
        )
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceBuffer {
    /// Creates an enabled buffer holding up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            enabled: AtomicBool::new(true),
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (off makes [`TraceBuffer::record`] a
    /// single atomic load).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn record(&self, event: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        let mut q = self.events.lock();
        if q.len() >= self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies out every buffered event in sequence order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut v: Vec<TraceEvent> = self.events.lock().iter().cloned().collect();
        v.sort_by_key(|e| e.seq);
        v
    }

    /// All events of one causal chain, in sequence order.
    pub fn chain(&self, cid: CorrelationId) -> Vec<TraceEvent> {
        let mut v: Vec<TraceEvent> = self
            .events
            .lock()
            .iter()
            .filter(|e| e.correlation_id == Some(cid))
            .cloned()
            .collect();
        v.sort_by_key(|e| e.seq);
        v
    }

    /// Discards all buffered events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Correlation ids present in the buffer, oldest chain first.
    pub fn correlations(&self) -> Vec<CorrelationId> {
        let mut seen = Vec::new();
        for e in self.snapshot() {
            if let Some(cid) = e.correlation_id {
                if !seen.contains(&cid) {
                    seen.push(cid);
                }
            }
        }
        seen
    }
}

/// The causal skeleton of a chain: the first occurrence of each milestone
/// kind (see [`EventKind::is_milestone`]) in sequence order.
///
/// For a fault on an externally paged region this is exactly
/// `fault → msg_send → data_request → disk_read → data_provided → resume`;
/// transport repetitions (the `pager_data_provided` reply is itself a
/// message) and multi-block disk reads collapse onto their first hop.
pub fn milestones(chain: &[TraceEvent]) -> Vec<EventKind> {
    let mut out: Vec<EventKind> = Vec::new();
    for e in chain {
        if e.kind.is_milestone() && !out.contains(&e.kind) {
            out.push(e.kind);
        }
    }
    out
}

/// A log₂-bucket latency histogram over nanosecond durations.
///
/// Bucket `i` counts samples whose bit length is `i` (i.e. the range
/// `[2^(i-1), 2^i)`); bucket 0 counts zeros. Percentile queries return the
/// inclusive upper bound of the bucket containing the requested rank, so
/// they overestimate by at most 2x — adequate for order-of-magnitude
/// latency work and extremely cheap to record.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        (u64::BITS - ns.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (`2^i - 1`; the last bucket is
    /// unbounded). Exposed for exporters that must render bucket edges
    /// (Prometheus `le` labels).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Non-empty buckets as `(inclusive_upper_bound_ns, count)` pairs in
    /// ascending bound order — the raw data a histogram exporter needs.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((Self::bucket_upper_bound(i), n))
            })
            .collect()
    }

    /// Records one sample.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample.
    pub fn max_ns(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns().checked_div(self.count()).unwrap_or(0)
    }

    /// Upper bound of the bucket holding the `p`-th percentile sample
    /// (`p` in 0..=100; 0 when empty).
    pub fn percentile_ns(&self, p: u8) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((n * u64::from(p.min(100))).div_ceil(100)).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max_ns());
            }
        }
        self.max_ns()
    }

    /// Median (p50) upper bound.
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50)
    }

    /// Tail (p99) upper bound.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99)
    }
}

/// A machine's named latency histograms.
///
/// Cloning shares the underlying registry, mirroring
/// [`StatsRegistry`](crate::stats::StatsRegistry).
#[derive(Clone, Debug, Default)]
pub struct LatencyRegistry {
    inner: Arc<RwLock<BTreeMap<String, Arc<Histogram>>>>,
}

impl LatencyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating on first use) the histogram named `key`.
    pub fn histogram(&self, key: &str) -> Arc<Histogram> {
        if let Some(h) = self.inner.read().get(key) {
            return h.clone();
        }
        self.inner
            .write()
            .entry(key.to_string())
            .or_default()
            .clone()
    }

    /// Records one sample into the histogram named `key`.
    pub fn record(&self, key: &str, ns: u64) {
        self.histogram(key).record(ns);
    }

    /// The histogram named `key`, if any samples created it.
    pub fn get(&self, key: &str) -> Option<Arc<Histogram>> {
        self.inner.read().get(key).cloned()
    }

    /// All histograms, sorted by key.
    pub fn snapshot(&self) -> Vec<(String, Arc<Histogram>)> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, cid: Option<CorrelationId>) -> TraceEvent {
        TraceEvent::new(0, Arc::from("host"), "test", kind, cid)
    }

    #[test]
    fn correlation_ids_are_unique_and_nonzero() {
        let a = CorrelationId::allocate();
        let b = CorrelationId::allocate();
        assert_ne!(a, b);
        assert_ne!(a.raw(), 0);
        assert_eq!(CorrelationId::from_raw(0), None);
        assert_eq!(CorrelationId::from_raw(a.raw()), Some(a));
    }

    #[test]
    fn correlation_scope_nests_and_restores() {
        assert_eq!(current_correlation(), None);
        let outer = CorrelationId::allocate();
        let inner = CorrelationId::allocate();
        {
            let _a = CorrelationScope::enter(outer);
            assert_eq!(current_correlation(), Some(outer));
            {
                let _b = CorrelationScope::enter(inner);
                assert_eq!(current_correlation(), Some(inner));
            }
            assert_eq!(current_correlation(), Some(outer));
        }
        assert_eq!(current_correlation(), None);
    }

    #[test]
    fn set_current_correlation_overwrites() {
        let cid = CorrelationId::allocate();
        set_current_correlation(Some(cid));
        assert_eq!(current_correlation(), Some(cid));
        set_current_correlation(None);
        assert_eq!(current_correlation(), None);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = TraceBuffer::new(3);
        for _ in 0..5 {
            t.record(ev(EventKind::Fault, None));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let snap = t.snapshot();
        // The three newest survive, in order.
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let t = TraceBuffer::new(8);
        t.set_enabled(false);
        t.record(ev(EventKind::Fault, None));
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(ev(EventKind::Fault, None));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn chain_filters_by_correlation() {
        let t = TraceBuffer::new(16);
        let a = CorrelationId::allocate();
        let b = CorrelationId::allocate();
        t.record(ev(EventKind::Fault, Some(a)));
        t.record(ev(EventKind::Fault, Some(b)));
        t.record(ev(EventKind::Resume, Some(a)));
        assert_eq!(t.chain(a).len(), 2);
        assert_eq!(t.chain(b).len(), 1);
        assert_eq!(t.correlations(), vec![a, b]);
    }

    #[test]
    fn milestones_keep_first_occurrence_in_order() {
        let cid = CorrelationId::allocate();
        let chain: Vec<TraceEvent> = [
            EventKind::Fault,
            EventKind::MsgSend,
            EventKind::MsgRecv, // transport detail, not a milestone
            EventKind::DataRequest,
            EventKind::DiskRead,
            EventKind::DiskRead, // multi-block read collapses
            EventKind::MsgSend,  // reply hop collapses onto first send
            EventKind::DataProvided,
            EventKind::Resume,
        ]
        .into_iter()
        .map(|k| ev(k, Some(cid)))
        .collect();
        assert_eq!(
            milestones(&chain),
            vec![
                EventKind::Fault,
                EventKind::MsgSend,
                EventKind::DataRequest,
                EventKind::DiskRead,
                EventKind::DataProvided,
                EventKind::Resume,
            ]
        );
    }

    #[test]
    fn histogram_percentiles_bound_samples() {
        let h = Histogram::new();
        for ns in [100u64, 200, 300, 400, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 100_000);
        assert_eq!(h.mean_ns(), (100 + 200 + 300 + 400 + 100_000) / 5);
        // p50 falls in the 256..511 bucket (300's bit length is 9).
        assert!(h.p50_ns() >= 300 && h.p50_ns() < 512, "p50={}", h.p50_ns());
        // p99 is the max sample's bucket, clamped to the observed max.
        assert_eq!(h.p99_ns(), 100_000);
        assert!(h.percentile_ns(1) >= 100 && h.percentile_ns(1) < 256);
    }

    #[test]
    fn empty_histogram_reports_zero_everywhere() {
        let h = Histogram::new();
        for p in [0u8, 1, 50, 99, 100] {
            assert_eq!(h.percentile_ns(p), 0, "p{p} of empty");
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let h = Histogram::new();
        h.record(777);
        for p in [0u8, 1, 50, 99, 100] {
            // One sample: every percentile lands in its bucket, and the
            // bound is clamped to the observed max.
            assert_eq!(h.percentile_ns(p), 777, "p{p} of single sample");
        }
        assert_eq!(h.buckets(), vec![(1023, 1)]);
    }

    #[test]
    fn all_samples_in_one_bucket_share_one_bound() {
        let h = Histogram::new();
        // 512..=1023 all land in the same log2 bucket.
        for ns in [512u64, 600, 800, 1023] {
            h.record(ns);
        }
        let p50 = h.p50_ns();
        let p99 = h.p99_ns();
        assert_eq!(p50, p99, "one bucket, one bound");
        assert_eq!(p99, 1023, "bucket bound clamped to observed max");
        assert_eq!(h.buckets(), vec![(1023, 4)]);
    }

    #[test]
    fn percentile_clamps_p0_and_p100() {
        let h = Histogram::new();
        h.record(10);
        h.record(1_000_000);
        // p0 still needs rank >= 1: it reports the smallest bucket.
        assert!(h.percentile_ns(0) >= 10 && h.percentile_ns(0) < 16);
        // p100 (and anything above, via min(100)) is the max sample.
        assert_eq!(h.percentile_ns(100), 1_000_000);
        assert_eq!(h.percentile_ns(200), 1_000_000);
    }

    #[test]
    fn percentiles_are_monotone_under_random_fills() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            // SplitMix64 step, kept local to avoid a cross-module dep.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _round in 0..10 {
            let h = Histogram::new();
            for _ in 0..200 {
                h.record(next() % 10_000_000);
            }
            let mut prev = 0u64;
            for p in [0u8, 10, 25, 50, 75, 90, 99, 100] {
                let v = h.percentile_ns(p);
                assert!(v >= prev, "p{p}={v} dipped below {prev}");
                prev = v;
            }
            assert!(h.p50_ns() <= h.p99_ns());
            assert!(h.p99_ns() <= h.max_ns());
        }
    }

    #[test]
    fn buckets_expose_cumulative_material() {
        let h = Histogram::new();
        for ns in [1u64, 2, 3, 1000, 100_000] {
            h.record(ns);
        }
        let buckets = h.buckets();
        let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, h.count());
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "sorted bounds");
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.p50_ns(), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p99_ns(), 0);
    }

    #[test]
    fn span_scope_nests_and_restores() {
        assert_eq!(current_span(), 0);
        let outer = allocate_span_id();
        let inner = allocate_span_id();
        assert_ne!(outer, 0);
        assert_ne!(outer, inner);
        {
            let _a = SpanScope::enter(outer);
            assert_eq!(current_span(), outer);
            {
                let _b = SpanScope::enter(inner);
                assert_eq!(current_span(), inner);
            }
            assert_eq!(current_span(), outer);
        }
        assert_eq!(current_span(), 0);
    }

    #[test]
    fn ambient_span_requires_matching_correlation() {
        let cid = CorrelationId::allocate();
        let other = CorrelationId::allocate();
        let span = allocate_span_id();
        let _c = CorrelationScope::enter(cid);
        let _s = SpanScope::enter(span);
        assert_eq!(ambient_span_for(cid.raw()), span);
        assert_eq!(ambient_span_for(other.raw()), 0, "foreign chain");
        assert_eq!(ambient_span_for(0), 0, "uncorrelated message");
    }

    #[test]
    fn latency_registry_shares_between_clones() {
        let r = LatencyRegistry::new();
        let r2 = r.clone();
        r.record("x", 10);
        r2.record("x", 20);
        let h = r.get("x").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(r.snapshot().len(), 1);
        assert!(r.get("missing").is_none());
    }
}
