//! Flight recorder: the in-flight causal-chain table behind the stall
//! watchdog.
//!
//! A page fault that becomes a `pager_data_request` message can wedge —
//! the PR 2 page-identity race showed up exactly that way, as a 1-in-10
//! stress mystery. The fix is to make the system self-diagnosing: the
//! fault path registers every chain here when it begins and removes it on
//! resolution (success *or* failure), so at any instant the table holds
//! precisely the chains with no resolution event yet. A watchdog thread
//! (see `machcore::Kernel`) scans the table on simulated-clock deadlines,
//! flags chains stalled past a threshold, and files a bounded "black box"
//! report for each.
//!
//! The table is sharded by correlation id: `begin`/`end` sit on the fault
//! hot path, and PR 2's lesson is that fault throughput is system
//! throughput — concurrent faults must not serialize behind one lock.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

/// Number of in-flight table shards (power of two for cheap masking).
const FLIGHT_SHARDS: usize = 16;

/// Bounded number of retained black-box reports.
const REPORT_CAPACITY: usize = 8;

/// One chain currently in flight: begun, not yet resolved.
#[derive(Clone, Debug)]
pub struct InFlightChain {
    /// Raw correlation id of the chain (never 0).
    pub cid: u64,
    /// The actor that began the chain ("vm.fault", ...).
    pub actor: String,
    /// Simulated time when the chain began.
    pub started_ns: u64,
    /// Consecutive watchdog scans that have observed this chain pending.
    pub scans: u32,
    /// Whether the watchdog has already flagged this chain as stalled.
    pub flagged: bool,
}

#[derive(Clone, Debug)]
struct Entry {
    actor: String,
    started_ns: u64,
    scans: u32,
    flagged: bool,
}

/// The in-flight chain table plus the black-box report ring.
///
/// Shared per machine (see `Machine::flight`); cheap to clone via `Arc`.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    shards: [Mutex<HashMap<u64, Entry>>; FLIGHT_SHARDS],
    reports: Mutex<VecDeque<String>>,
}

impl FlightRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, cid: u64) -> &Mutex<HashMap<u64, Entry>> {
        // Correlation ids are sequential; mix before masking so neighbors
        // land on different shards.
        let h = cid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> (64 - 4)) as usize & (FLIGHT_SHARDS - 1)]
    }

    /// Registers a chain as in flight. `cid` is the raw correlation id.
    pub fn begin(&self, cid: u64, actor: &str, started_ns: u64) {
        if cid == 0 {
            return;
        }
        self.shard(cid).lock().insert(
            cid,
            Entry {
                actor: actor.to_string(),
                started_ns,
                scans: 0,
                flagged: false,
            },
        );
    }

    /// Removes a chain: it resolved (successfully or not).
    pub fn end(&self, cid: u64) {
        if cid == 0 {
            return;
        }
        self.shard(cid).lock().remove(&cid);
    }

    /// Number of chains currently in flight.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether no chain is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One watchdog scan: bumps every entry's scan count and returns a
    /// snapshot of the table (after the bump), oldest chain first.
    pub fn tick(&self) -> Vec<InFlightChain> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut s = shard.lock();
            for (cid, e) in s.iter_mut() {
                e.scans += 1;
                out.push(InFlightChain {
                    cid: *cid,
                    actor: e.actor.clone(),
                    started_ns: e.started_ns,
                    scans: e.scans,
                    flagged: e.flagged,
                });
            }
        }
        out.sort_by_key(|c| (c.started_ns, c.cid));
        out
    }

    /// Marks a chain as flagged. Returns `true` only the first time, so a
    /// wedged chain produces exactly one stall event no matter how many
    /// scans observe it afterwards.
    pub fn flag(&self, cid: u64) -> bool {
        let mut s = self.shard(cid).lock();
        match s.get_mut(&cid) {
            Some(e) if !e.flagged => {
                e.flagged = true;
                true
            }
            _ => false,
        }
    }

    /// Files a black-box report, discarding the oldest past the bound.
    pub fn push_report(&self, report: String) {
        let mut r = self.reports.lock();
        if r.len() >= REPORT_CAPACITY {
            r.pop_front();
        }
        r.push_back(report);
    }

    /// Retained black-box reports, oldest first.
    pub fn reports(&self) -> Vec<String> {
        self.reports.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_end_tracks_in_flight() {
        let f = FlightRecorder::new();
        assert!(f.is_empty());
        f.begin(1, "vm.fault", 100);
        f.begin(2, "vm.fault", 200);
        assert_eq!(f.len(), 2);
        f.end(1);
        assert_eq!(f.len(), 1);
        let snap = f.tick();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].cid, 2);
        assert_eq!(snap[0].started_ns, 200);
    }

    #[test]
    fn zero_cid_is_ignored() {
        let f = FlightRecorder::new();
        f.begin(0, "x", 1);
        assert!(f.is_empty());
        f.end(0); // must not panic
    }

    #[test]
    fn tick_counts_scans_and_sorts_oldest_first() {
        let f = FlightRecorder::new();
        f.begin(7, "b", 500);
        f.begin(9, "a", 100);
        let first = f.tick();
        assert_eq!(first[0].cid, 9, "oldest chain first");
        assert!(first.iter().all(|c| c.scans == 1));
        let second = f.tick();
        assert!(second.iter().all(|c| c.scans == 2));
    }

    #[test]
    fn flag_latches_exactly_once() {
        let f = FlightRecorder::new();
        f.begin(5, "vm.fault", 0);
        assert!(f.flag(5));
        assert!(!f.flag(5), "second flag suppressed");
        assert!(!f.flag(42), "unknown chain not flaggable");
        assert!(f.tick()[0].flagged);
    }

    #[test]
    fn reports_are_bounded() {
        let f = FlightRecorder::new();
        for i in 0..20 {
            f.push_report(format!("report {i}"));
        }
        let r = f.reports();
        assert_eq!(r.len(), REPORT_CAPACITY);
        assert_eq!(r.last().unwrap(), "report 19");
        assert_eq!(r.first().unwrap(), "report 12");
    }

    #[test]
    fn end_after_flag_clears_entry() {
        let f = FlightRecorder::new();
        f.begin(3, "vm.fault", 0);
        assert!(f.flag(3));
        f.end(3);
        assert!(f.is_empty());
        assert!(!f.flag(3));
    }
}
