//! Runtime witness for the declared kernel lock hierarchies.
//!
//! The resident-memory fault path and the IPC port fast path may nest
//! locks only in the documented order (see the Concurrency sections of
//! `machvm::resident` and `machipc::port`):
//!
//! ```text
//! run queue → fault table → shard table → frame meta → frame data
//!           → queues/free-list → NUMA pool → port control → port shard
//! ```
//!
//! `machlint`'s L1 lint checks that order *statically* against every
//! function that nests acquisitions. This module is the dynamic half: with
//! `--features lockdep`, every classified lock records its acquisition on
//! a thread-local stack and panics the moment any thread acquires a class
//! while holding a later-ranked one — so the existing 8-thread fault and
//! NUMA stress tests double as a model checker for the static hierarchy.
//! Same-rank nesting is permitted, mirroring the static allowlist's
//! deliberate bypasses (two shards locked in index order in `rekey_page`,
//! src→dst frame pairs in `copy_page`/`maybe_migrate`).
//!
//! The module lives in `machsim` (the root of the crate graph) so both
//! `machvm` and `machipc` can classify their locks without a dependency
//! cycle; `machvm::lockdep` re-exports it for source compatibility.
//!
//! Without the feature, [`acquire`] is a no-op returning a zero-sized
//! token and the wrappers compile down to the raw `parking_lot` types plus
//! one dead `u8`, so default builds pay nothing.
//!
//! Independently of the witness feature, every classified lock feeds an
//! **always-on contention profile**: per-class acquisition/contention
//! counters plus wait- and hold-time histograms (see
//! [`contention_snapshot`]). The profile times *wall* nanoseconds via the
//! [`crate::wall`] airlock — lock contention is a property of the host
//! executing the simulation, not of simulated time — so these histograms
//! are diagnostic only and must never be mixed into a machine's sim-time
//! [`LatencyRegistry`](crate::trace::LatencyRegistry). Hold times include
//! any condvar waits performed through [`ClassMutexGuard::inner_mut`]
//! (the fault table's idle ticks show up as ~1 ms holds by design).

use crate::trace::Histogram;
use crate::wall;
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The classes of the declared hierarchy, outermost first.
///
/// Keep ranks in sync with the `[lock]` hierarchy in `machlint.toml`; the
/// static and dynamic checkers must agree on what "later" means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockClass {
    /// One CPU's run queue (`Cpu::rq` in `machsched`). Outermost of all:
    /// scheduling happens strictly before the dispatched task touches
    /// memory or IPC, workers drop the queue lock before running a task
    /// body, and nothing below the scheduler ever calls back into it with
    /// locks held (task code submits new work holding no VM/IPC locks).
    RunQueue = 0,
    /// The async fault engine's outstanding-continuation table
    /// (`FaultEngine::table`). Outermost of the VM/IPC hierarchy: the
    /// completion loop steps parked faults — which take every VM lock and
    /// send pager messages — while holding it, and nothing inside the VM
    /// or IPC layers ever calls back into the engine with its locks held
    /// (the completion hook runs strictly after shard locks are dropped).
    FaultTable = 1,
    /// A resident-table shard (`Shard::state`).
    Shard = 2,
    /// A frame's slow-path metadata (`Frame::meta`).
    FrameMeta = 3,
    /// A frame's page bytes (`Frame::data`).
    FrameData = 4,
    /// The pageout queues and per-node free lists (`PhysicalMemory::queues`).
    Queues = 5,
    /// Reserved for a dedicated per-node pool lock; today the per-node
    /// free lists live under [`LockClass::Queues`], so nothing acquires
    /// this rank yet.
    NumaPool = 6,
    /// An IPC port's control plane (`PortCore::control`): death state,
    /// subscriptions, port-set wakers and the RPC handoff slot. Ranked
    /// after every VM class because pager paths send messages while the
    /// fault path's locks are (transitively) pinned, never vice versa.
    PortControl = 7,
    /// One sub-queue of an IPC port's sharded message queue
    /// (`PortShard::ring`). Innermost: a shard is locked only to push or
    /// pop messages, sometimes while the port's control lock is held
    /// (receiver re-scan), never the other way around.
    PortShard = 8,
}

impl LockClass {
    /// Every class, in rank order (indexable by [`LockClass::rank`]).
    pub const ALL: [LockClass; 9] = [
        LockClass::RunQueue,
        LockClass::FaultTable,
        LockClass::Shard,
        LockClass::FrameMeta,
        LockClass::FrameData,
        LockClass::Queues,
        LockClass::NumaPool,
        LockClass::PortControl,
        LockClass::PortShard,
    ];

    /// Position in the hierarchy; lower ranks must be taken first.
    pub fn rank(self) -> u8 {
        self as u8
    }

    /// The class's name as `machlint.toml` spells it.
    pub fn name(self) -> &'static str {
        match self {
            LockClass::RunQueue => "run-queue",
            LockClass::FaultTable => "fault-table",
            LockClass::Shard => "shard",
            LockClass::FrameMeta => "frame-meta",
            LockClass::FrameData => "frame-data",
            LockClass::Queues => "queues",
            LockClass::NumaPool => "numa-pool",
            LockClass::PortControl => "port-control",
            LockClass::PortShard => "port-shard",
        }
    }
}

/// Per-class contention statistics (process-wide, like the witness: one
/// simulated host's locks are not distinguishable from another's here,
/// which is fine for a host-level diagnostic).
struct ClassStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait_ns: Histogram,
    hold_ns: Histogram,
}

fn class_stats() -> &'static [ClassStats; 9] {
    static STATS: OnceLock<[ClassStats; 9]> = OnceLock::new();
    STATS.get_or_init(|| {
        std::array::from_fn(|_| ClassStats {
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait_ns: Histogram::new(),
            hold_ns: Histogram::new(),
        })
    })
}

fn stats_of(class: LockClass) -> &'static ClassStats {
    &class_stats()[class.rank() as usize]
}

/// One class's slice of the contention profile (see
/// [`contention_snapshot`]).
#[derive(Clone, Copy, Debug)]
pub struct ClassContention {
    /// The lock class profiled.
    pub class: LockClass,
    /// Total classified acquisitions (lock/read/write calls).
    pub acquisitions: u64,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
    /// Wall-ns spent blocked, one sample per contended acquisition.
    pub wait_ns: &'static Histogram,
    /// Wall-ns each guard was held (includes condvar waits under it).
    pub hold_ns: &'static Histogram,
}

/// The contention profile of every class that saw traffic, in rank order.
pub fn contention_snapshot() -> Vec<ClassContention> {
    LockClass::ALL
        .iter()
        .map(|&class| {
            let s = stats_of(class);
            ClassContention {
                class,
                acquisitions: s.acquisitions.load(Ordering::Relaxed),
                contended: s.contended.load(Ordering::Relaxed),
                wait_ns: &s.wait_ns,
                hold_ns: &s.hold_ns,
            }
        })
        .filter(|c| c.acquisitions > 0)
        .collect()
}

/// Total contended acquisitions across every class (the process-wide
/// `lock.contended` feed; machines fold deltas into their stats when
/// sampling gauges).
pub fn contention_total() -> u64 {
    class_stats()
        .iter()
        .map(|s| s.contended.load(Ordering::Relaxed))
        .sum()
}

fn record_wait(class: LockClass, blocked_from: Instant) {
    stats_of(class).wait_ns.record(
        wall::now()
            .saturating_duration_since(blocked_from)
            .as_nanos() as u64,
    );
}

fn record_hold(class: LockClass, acquired_at: Instant) {
    stats_of(class).hold_ns.record(
        wall::now()
            .saturating_duration_since(acquired_at)
            .as_nanos() as u64,
    );
}

#[cfg(feature = "lockdep")]
mod witness {
    use super::LockClass;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};

    thread_local! {
        static HELD: RefCell<Vec<LockClass>> = const { RefCell::new(Vec::new()) };
    }

    /// Nested (order-checked) acquisitions observed process-wide; lets
    /// tests assert the witness actually saw traffic.
    static NESTED_CHECKED: AtomicU64 = AtomicU64::new(0);

    /// RAII record of one classified acquisition.
    pub struct Held {
        class: LockClass,
    }

    /// Validates `class` against everything this thread already holds and
    /// pushes it onto the thread's held stack.
    ///
    /// # Panics
    ///
    /// Panics when a held class ranks *after* `class` — an order the
    /// static hierarchy forbids.
    pub fn acquire(class: LockClass) -> Held {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            for &earlier in held.iter() {
                if earlier.rank() > class.rank() {
                    panic!(
                        "lockdep: acquired '{}' (rank {}) while holding '{}' (rank {}); \
                         the hierarchy is run-queue → fault-table → shard → frame-meta → \
                         frame-data → queues → numa-pool → port-control → port-shard",
                        class.name(),
                        class.rank(),
                        earlier.name(),
                        earlier.rank(),
                    );
                }
            }
            if !held.is_empty() {
                NESTED_CHECKED.fetch_add(1, Ordering::Relaxed);
            }
            held.push(class);
        });
        Held { class }
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&c| c == self.class) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Total nested acquisitions the witness has order-checked.
    pub fn nested_acquisitions() -> u64 {
        NESTED_CHECKED.load(Ordering::Relaxed)
    }
}

#[cfg(feature = "lockdep")]
pub use witness::{acquire, nested_acquisitions, Held};

#[cfg(not(feature = "lockdep"))]
mod witness_off {
    use super::LockClass;

    /// Zero-sized stand-in for the witness token.
    pub struct Held;

    /// No-op when the `lockdep` feature is disabled.
    #[inline(always)]
    pub fn acquire(_class: LockClass) -> Held {
        Held
    }

    /// Always zero when the `lockdep` feature is disabled.
    #[inline(always)]
    pub fn nested_acquisitions() -> u64 {
        0
    }
}

#[cfg(not(feature = "lockdep"))]
pub use witness_off::{acquire, nested_acquisitions, Held};

/// A [`Mutex`] tagged with its place in the lock hierarchy.
pub struct ClassMutex<T: ?Sized> {
    class: LockClass,
    inner: Mutex<T>,
}

/// RAII guard for [`ClassMutex`]; releases the witness record with the
/// lock and records the hold time on drop.
pub struct ClassMutexGuard<'a, T: ?Sized> {
    // Field order matters: the real guard must drop before the witness
    // token so the stack never claims a lock released while still held.
    // (The custom `Drop` body runs before either field drops, so the
    // hold-time sample is taken while the lock is still held.)
    guard: MutexGuard<'a, T>,
    _held: Held,
    class: LockClass,
    acquired_at: Instant,
}

impl<T> ClassMutex<T> {
    /// Wraps `value` in a mutex belonging to `class`.
    pub fn new(class: LockClass, value: T) -> Self {
        Self {
            class,
            inner: Mutex::new(value),
        }
    }
}

impl<T: ?Sized> ClassMutex<T> {
    /// Acquires the lock, recording the acquisition with the witness and
    /// the contention profile.
    pub fn lock(&self) -> ClassMutexGuard<'_, T> {
        let held = acquire(self.class);
        let stats = stats_of(self.class);
        stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        let guard = match self.inner.try_lock() {
            Some(g) => g,
            None => {
                stats.contended.fetch_add(1, Ordering::Relaxed);
                let blocked_from = wall::now();
                let g = self.inner.lock();
                record_wait(self.class, blocked_from);
                g
            }
        };
        ClassMutexGuard {
            guard,
            _held: held,
            class: self.class,
            acquired_at: wall::now(),
        }
    }
}

impl<T: ?Sized> Drop for ClassMutexGuard<'_, T> {
    fn drop(&mut self) {
        record_hold(self.class, self.acquired_at);
    }
}

impl<'a, T: ?Sized> ClassMutexGuard<'a, T> {
    /// The underlying `parking_lot` guard, for `Condvar::wait` and
    /// friends. The witness keeps the class on the held stack across the
    /// wait: re-acquisition is same-class, which the hierarchy permits.
    pub fn inner_mut(&mut self) -> &mut MutexGuard<'a, T> {
        &mut self.guard
    }
}

impl<T: ?Sized> Deref for ClassMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for ClassMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// An [`RwLock`] tagged with its place in the lock hierarchy.
pub struct ClassRwLock<T: ?Sized> {
    class: LockClass,
    inner: RwLock<T>,
}

/// RAII read guard for [`ClassRwLock`].
pub struct ClassReadGuard<'a, T: ?Sized> {
    guard: RwLockReadGuard<'a, T>,
    _held: Held,
    class: LockClass,
    acquired_at: Instant,
}

/// RAII write guard for [`ClassRwLock`].
pub struct ClassWriteGuard<'a, T: ?Sized> {
    guard: RwLockWriteGuard<'a, T>,
    _held: Held,
    class: LockClass,
    acquired_at: Instant,
}

impl<T> ClassRwLock<T> {
    /// Wraps `value` in a reader-writer lock belonging to `class`.
    pub fn new(class: LockClass, value: T) -> Self {
        Self {
            class,
            inner: RwLock::new(value),
        }
    }
}

impl<T: ?Sized> ClassRwLock<T> {
    /// Acquires shared read access, recording it with the witness and the
    /// contention profile.
    pub fn read(&self) -> ClassReadGuard<'_, T> {
        let held = acquire(self.class);
        let stats = stats_of(self.class);
        stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        let guard = match self.inner.try_read() {
            Some(g) => g,
            None => {
                stats.contended.fetch_add(1, Ordering::Relaxed);
                let blocked_from = wall::now();
                let g = self.inner.read();
                record_wait(self.class, blocked_from);
                g
            }
        };
        ClassReadGuard {
            guard,
            _held: held,
            class: self.class,
            acquired_at: wall::now(),
        }
    }

    /// Acquires exclusive write access, recording it with the witness and
    /// the contention profile.
    pub fn write(&self) -> ClassWriteGuard<'_, T> {
        let held = acquire(self.class);
        let stats = stats_of(self.class);
        stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        let guard = match self.inner.try_write() {
            Some(g) => g,
            None => {
                stats.contended.fetch_add(1, Ordering::Relaxed);
                let blocked_from = wall::now();
                let g = self.inner.write();
                record_wait(self.class, blocked_from);
                g
            }
        };
        ClassWriteGuard {
            guard,
            _held: held,
            class: self.class,
            acquired_at: wall::now(),
        }
    }
}

impl<T: ?Sized> Drop for ClassReadGuard<'_, T> {
    fn drop(&mut self) {
        record_hold(self.class, self.acquired_at);
    }
}

impl<T: ?Sized> Drop for ClassWriteGuard<'_, T> {
    fn drop(&mut self) {
        record_hold(self.class, self.acquired_at);
    }
}

impl<T: ?Sized> Deref for ClassReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for ClassWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for ClassWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_nesting_is_silent() {
        let a = ClassMutex::new(LockClass::Shard, 1u32);
        let b = ClassMutex::new(LockClass::Queues, 2u32);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn same_class_nesting_is_permitted() {
        // rekey_page locks two shards (in index order); the witness must
        // accept same-rank pairs or every deliberate bypass would trip it.
        let a = ClassMutex::new(LockClass::Shard, ());
        let b = ClassMutex::new(LockClass::Shard, ());
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[cfg(feature = "lockdep")]
    #[test]
    fn out_of_order_nesting_panics() {
        let result = std::thread::spawn(|| {
            let q = ClassMutex::new(LockClass::Queues, ());
            let s = ClassMutex::new(LockClass::Shard, ());
            let _gq = q.lock();
            let _gs = s.lock(); // queues → shard: forbidden
        })
        .join();
        assert!(result.is_err(), "queues → shard must trip the witness");
    }

    #[cfg(feature = "lockdep")]
    #[test]
    fn witness_counts_nested_checks() {
        let before = nested_acquisitions();
        let a = ClassMutex::new(LockClass::FrameMeta, ());
        let b = ClassMutex::new(LockClass::Queues, ());
        let _ga = a.lock();
        let _gb = b.lock();
        assert!(nested_acquisitions() > before);
    }

    #[test]
    fn contention_profile_counts_blocked_acquisitions() {
        use std::sync::Arc;
        let before: u64 = contention_snapshot()
            .iter()
            .find(|c| c.class == LockClass::FrameData)
            .map_or(0, |c| c.contended);
        let m = Arc::new(ClassMutex::new(LockClass::FrameData, ()));
        let m2 = m.clone();
        let g = m.lock();
        let t = std::thread::spawn(move || {
            let _g = m2.lock(); // blocks until the main thread releases
        });
        wall::sleep(std::time::Duration::from_millis(5));
        drop(g);
        t.join().expect("contender thread exits");
        let after = contention_snapshot()
            .into_iter()
            .find(|c| c.class == LockClass::FrameData)
            .expect("class saw traffic");
        assert!(after.contended > before, "blocked lock() must count");
        assert!(after.wait_ns.count() > 0, "wait histogram fed");
        assert!(after.hold_ns.count() > 0, "hold histogram fed");
        assert!(contention_total() >= after.contended);
    }

    #[test]
    fn rwlock_guards_deref() {
        let l = ClassRwLock::new(LockClass::FrameData, vec![1u8, 2]);
        assert_eq!(l.read()[0], 1);
        l.write()[1] = 9;
        assert_eq!(l.read()[1], 9);
    }
}
