//! Sampled queue-depth and occupancy gauges.
//!
//! Counters ([`crate::stats`]) answer "how many ever"; latency histograms
//! ([`crate::trace`]) answer "how long each"; neither answers "how *full*
//! was the system while it was slow". This module holds named gauge
//! sources — closures reading an instantaneous depth (port queue length,
//! continuation-table occupancy, per-pager in-flight pages, NUMA pool free
//! frames) — and a ring-buffered time series per source, sampled on the
//! fault engine's completion-loop tick (or explicitly via
//! [`crate::machine::Machine::sample_gauges`]). Exporters render the
//! series as Chrome-trace counter tracks and the latest value as
//! Prometheus gauges.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Samples kept per gauge before the oldest are overwritten.
pub const GAUGE_RING_CAPACITY: usize = 1024;

/// One gauge's sampled time series.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSeries {
    /// Gauge name (`gauge.` prefix by convention).
    pub name: String,
    /// `(sim_ts_ns, value)` samples, oldest first.
    pub samples: Vec<(u64, u64)>,
}

struct Source {
    name: String,
    read: Box<dyn Fn() -> u64 + Send + Sync>,
    ring: VecDeque<(u64, u64)>,
}

/// A machine's registered gauge sources and their sample rings.
///
/// Reader closures run with only the registry lock held, so they may take
/// any simulator lock (the registry is a leaf: no closure re-enters it).
#[derive(Default)]
pub struct GaugeRegistry {
    sources: Mutex<Vec<Source>>,
    /// Last process-wide `lock.contended` total folded into a machine
    /// counter, so repeated samples add only the delta (see
    /// [`crate::machine::Machine::sample_gauges`]).
    contended_seen: AtomicU64,
}

impl fmt::Debug for GaugeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GaugeRegistry({} sources)", self.sources.lock().len())
    }
}

impl GaugeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a gauge source. Re-registering a name replaces the old
    /// source and discards its samples (a rebooted kernel re-registers).
    pub fn register(&self, name: &str, read: impl Fn() -> u64 + Send + Sync + 'static) {
        let mut sources = self.sources.lock();
        sources.retain(|s| s.name != name);
        sources.push(Source {
            name: name.to_string(),
            read: Box::new(read),
            ring: VecDeque::with_capacity(64),
        });
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.lock().len()
    }

    /// Whether no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.lock().is_empty()
    }

    /// Reads every source once, appending `(now_ns, value)` to its ring.
    /// Returns the number of sources sampled.
    pub fn sample_all(&self, now_ns: u64) -> usize {
        let mut sources = self.sources.lock();
        for s in sources.iter_mut() {
            let value = (s.read)();
            if s.ring.len() >= GAUGE_RING_CAPACITY {
                s.ring.pop_front();
            }
            s.ring.push_back((now_ns, value));
        }
        sources.len()
    }

    /// Copies out every gauge's time series, in registration order.
    pub fn snapshot(&self) -> Vec<GaugeSeries> {
        self.sources
            .lock()
            .iter()
            .map(|s| GaugeSeries {
                name: s.name.clone(),
                samples: s.ring.iter().copied().collect(),
            })
            .collect()
    }

    /// Each gauge's most recent sampled value (names without samples are
    /// skipped — sample first).
    pub fn latest(&self) -> Vec<(String, u64)> {
        self.sources
            .lock()
            .iter()
            .filter_map(|s| s.ring.back().map(|&(_, v)| (s.name.clone(), v)))
            .collect()
    }

    /// Returns `total - last_seen` and advances the mark, for folding a
    /// process-global monotone counter into per-machine stats exactly
    /// once per increment.
    pub fn counter_delta(&self, total: u64) -> u64 {
        let seen = self.contended_seen.swap(total, Ordering::Relaxed);
        total.saturating_sub(seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn sampling_builds_a_ring_buffered_series() {
        let g = GaugeRegistry::new();
        let depth = Arc::new(AtomicU64::new(3));
        let d = depth.clone();
        g.register("gauge.test.depth", move || d.load(Ordering::Relaxed));
        assert_eq!(g.len(), 1);
        assert_eq!(g.sample_all(100), 1);
        depth.store(7, Ordering::Relaxed);
        g.sample_all(200);
        let snap = g.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].samples, vec![(100, 3), (200, 7)]);
        assert_eq!(g.latest(), vec![("gauge.test.depth".to_string(), 7)]);
    }

    #[test]
    fn ring_caps_and_reregistration_replaces() {
        let g = GaugeRegistry::new();
        g.register("gauge.x", || 1);
        for i in 0..(GAUGE_RING_CAPACITY as u64 + 10) {
            g.sample_all(i);
        }
        assert_eq!(g.snapshot()[0].samples.len(), GAUGE_RING_CAPACITY);
        g.register("gauge.x", || 2);
        assert_eq!(g.len(), 1);
        assert!(g.latest().is_empty(), "replacement discards samples");
    }

    #[test]
    fn counter_delta_is_monotone_and_exact() {
        let g = GaugeRegistry::new();
        assert_eq!(g.counter_delta(5), 5);
        assert_eq!(g.counter_delta(5), 0);
        assert_eq!(g.counter_delta(9), 4);
    }
}
