//! The shared context of one simulated machine (host).
//!
//! Every subsystem of one host — IPC, VM, disks, network interface —
//! charges the same clock and counter registry, so an experiment can ask
//! "how much total work did this host do" and "how many I/O operations
//! happened" exactly as the paper does in Section 9.

use crate::clock::SimClock;
use crate::cost::CostModel;
use crate::stats::StatsRegistry;
use crate::topology::Topology;
use std::sync::Arc;

/// Clock, statistics and cost model of one simulated host.
///
/// Cloning shares the underlying clock and counters.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Virtual clock charged by every component of this host.
    pub clock: SimClock,
    /// Event counters for this host.
    pub stats: StatsRegistry,
    /// Latency model.
    pub cost: Arc<CostModel>,
}

impl Machine {
    /// Creates a machine with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Self {
            clock: SimClock::new(),
            stats: StatsRegistry::new(),
            cost: Arc::new(cost),
        }
    }

    /// A default UMA workstation.
    pub fn default_machine() -> Self {
        Self::new(CostModel::default())
    }

    /// A machine of the given multiprocessor class (Section 7).
    pub fn with_topology(topology: Topology) -> Self {
        Self::new(CostModel::for_topology(topology))
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::default_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_clock_and_stats() {
        let m = Machine::default_machine();
        let n = m.clone();
        m.clock.charge(5);
        m.stats.incr("x");
        assert_eq!(n.clock.now_ns(), 5);
        assert_eq!(n.stats.get("x"), 1);
    }

    #[test]
    fn topology_constructor_sets_cost_model() {
        let m = Machine::with_topology(Topology::Norma);
        assert_eq!(m.cost.topology, Topology::Norma);
    }
}
