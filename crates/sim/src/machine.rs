//! The shared context of one simulated machine (host).
//!
//! Every subsystem of one host — IPC, VM, disks, network interface —
//! charges the same clock and counter registry, so an experiment can ask
//! "how much total work did this host do" and "how many I/O operations
//! happened" exactly as the paper does in Section 9.

use crate::clock::SimClock;
use crate::cost::CostModel;
use crate::flight::FlightRecorder;
use crate::gauge::GaugeRegistry;
use crate::stats::{keys, HotCounters, StatsRegistry};
use crate::topology::Topology;
use crate::trace::{CorrelationId, EventKind, LatencyRegistry, SpanInfo, TraceBuffer, TraceEvent};
use std::sync::Arc;

/// Clock, statistics and cost model of one simulated host.
///
/// Cloning shares the underlying clock, counters, trace ring and latency
/// histograms.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Virtual clock charged by every component of this host.
    pub clock: SimClock,
    /// Event counters for this host.
    pub stats: StatsRegistry,
    /// Latency model.
    pub cost: Arc<CostModel>,
    /// Causal trace ring of this host.
    pub trace: Arc<TraceBuffer>,
    /// Named latency histograms of this host.
    pub latency: LatencyRegistry,
    /// Pre-resolved counters for the fault/IPC/disk hot paths, backed by
    /// the same atomics as `stats` (no per-increment name lookup).
    pub hot: Arc<HotCounters>,
    /// In-flight causal-chain table scanned by the stall watchdog.
    pub flight: Arc<FlightRecorder>,
    /// Sampled queue-depth/occupancy gauges of this host.
    pub gauges: Arc<GaugeRegistry>,
    /// Host name shown in trace events ("local" unless on a fabric).
    host: Arc<str>,
}

impl Machine {
    /// Creates a machine with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Self::named(cost, "local")
    }

    /// Creates a machine with the given cost model and host name.
    pub fn named(cost: CostModel, host: &str) -> Self {
        let stats = StatsRegistry::new();
        let hot = Arc::new(HotCounters::new(&stats));
        Self {
            clock: SimClock::new(),
            stats,
            cost: Arc::new(cost),
            trace: Arc::new(TraceBuffer::default()),
            latency: LatencyRegistry::new(),
            hot,
            flight: Arc::new(FlightRecorder::new()),
            gauges: Arc::new(GaugeRegistry::new()),
            host: Arc::from(host),
        }
    }

    /// The host name stamped on this machine's trace events.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Records a trace event under the current thread's correlation id.
    pub fn trace_event(&self, actor: &str, kind: EventKind) {
        self.trace_event_with(actor, kind, crate::trace::current_correlation());
    }

    /// Records a trace event under an explicit correlation id.
    pub fn trace_event_with(&self, actor: &str, kind: EventKind, cid: Option<CorrelationId>) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace.record(TraceEvent::new(
            self.clock.now_ns(),
            self.host.clone(),
            actor,
            kind,
            cid,
        ));
    }

    /// Opens a phase span under the current thread's (correlation, span)
    /// context and returns its raw id. Pair with [`Machine::span_close`]
    /// passing the *same name literal* — machlint's span-pairing lint
    /// matches open/close names statically per file.
    pub fn span_open(&self, name: &'static str) -> u64 {
        self.span_open_with(
            name,
            crate::trace::current_span(),
            crate::trace::current_correlation(),
        )
    }

    /// Opens a phase span under an explicit parent (0 = chain root),
    /// correlated to the current thread's chain.
    pub fn span_open_under(&self, name: &'static str, parent: u64) -> u64 {
        self.span_open_with(name, parent, crate::trace::current_correlation())
    }

    /// Opens a phase span with explicit parent and correlation — the
    /// fully spelled-out form used where the chain context is carried in
    /// a message or continuation rather than thread-locally.
    pub fn span_open_with(
        &self,
        name: &'static str,
        parent: u64,
        cid: Option<CorrelationId>,
    ) -> u64 {
        let id = crate::trace::allocate_span_id();
        self.hot.trace_spans.incr();
        if self.trace.is_enabled() {
            self.trace.record(
                TraceEvent::new(
                    self.clock.now_ns(),
                    self.host.clone(),
                    name,
                    EventKind::SpanOpen(name),
                    cid,
                )
                .with_span(SpanInfo { id, parent }),
            );
        }
        id
    }

    /// Closes span `id` under the current thread's correlation.
    pub fn span_close(&self, name: &'static str, id: u64) {
        self.span_close_with(name, id, crate::trace::current_correlation());
    }

    /// Closes span `id` under an explicit correlation.
    pub fn span_close_with(&self, name: &'static str, id: u64, cid: Option<CorrelationId>) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace.record(
            TraceEvent::new(
                self.clock.now_ns(),
                self.host.clone(),
                name,
                EventKind::SpanClose(name),
                cid,
            )
            .with_span(SpanInfo { id, parent: 0 }),
        );
    }

    /// Opens a span, makes it the thread's current span, and returns a
    /// guard that closes it (and restores the previous span) on drop.
    /// Self-pairing, so the span-pairing lint ignores `span_enter` sites.
    pub fn span_enter(&self, name: &'static str) -> SpanGuard {
        let id = self.span_open(name);
        let previous = crate::trace::current_span();
        crate::trace::set_current_span(id);
        SpanGuard {
            machine: self.clone(),
            name,
            id,
            previous,
        }
    }

    /// Samples every registered gauge at the current sim-time and folds
    /// the process-wide lock-contention total into this machine's
    /// [`keys::LOCK_CONTENDED`] counter (as a delta, so one machine per
    /// process sees each contended acquisition — adequate for the
    /// single-kernel benchmarks these telemetry feeds serve).
    pub fn sample_gauges(&self) {
        let sampled = self.gauges.sample_all(self.clock.now_ns());
        if sampled > 0 {
            self.stats.add(keys::GAUGE_SAMPLES, 1);
        }
        let delta = self
            .gauges
            .counter_delta(crate::lockdep::contention_total());
        if delta > 0 {
            self.stats.add(keys::LOCK_CONTENDED, delta);
        }
    }

    /// A default UMA workstation.
    pub fn default_machine() -> Self {
        Self::new(CostModel::default())
    }

    /// A machine of the given multiprocessor class (Section 7).
    pub fn with_topology(topology: Topology) -> Self {
        Self::new(CostModel::for_topology(topology))
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::default_machine()
    }
}

/// RAII guard from [`Machine::span_enter`]: closes its span and restores
/// the thread's previous current span on drop.
pub struct SpanGuard {
    machine: Machine,
    name: &'static str,
    id: u64,
    previous: u64,
}

impl SpanGuard {
    /// The raw id of the span this guard holds open.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.machine.span_close(self.name, self.id);
        crate::trace::set_current_span(self.previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_clock_and_stats() {
        let m = Machine::default_machine();
        let n = m.clone();
        m.clock.charge(5);
        m.stats.incr("x");
        assert_eq!(n.clock.now_ns(), 5);
        assert_eq!(n.stats.get("x"), 1);
    }

    #[test]
    fn topology_constructor_sets_cost_model() {
        let m = Machine::with_topology(Topology::Norma);
        assert_eq!(m.cost.topology, Topology::Norma);
    }

    #[test]
    fn span_enter_nests_and_emits_paired_events() {
        let m = Machine::named(CostModel::default(), "spanhost");
        let cid = CorrelationId::allocate();
        let _c = crate::trace::CorrelationScope::enter(cid);
        {
            let outer = m.span_enter("outer");
            m.clock.charge(10);
            {
                let inner = m.span_enter("inner");
                assert_eq!(crate::trace::current_span(), inner.id());
                m.clock.charge(5);
            }
            assert_eq!(crate::trace::current_span(), outer.id());
        }
        assert_eq!(crate::trace::current_span(), 0);
        let spans = crate::span::collect(&m.trace.snapshot());
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].parent, spans[0].id, "inner nests under outer");
        assert_eq!(spans[1].correlation, Some(cid));
        assert!(spans.iter().all(|s| s.close_ns.is_some()));
        assert_eq!(m.stats.get(keys::TRACE_SPANS), 2);
    }

    #[test]
    fn sample_gauges_counts_sweeps() {
        let m = Machine::default_machine();
        m.sample_gauges();
        assert_eq!(m.stats.get(keys::GAUGE_SAMPLES), 0, "no sources yet");
        m.gauges.register("gauge.test", || 42);
        m.clock.charge(7);
        m.sample_gauges();
        assert_eq!(m.stats.get(keys::GAUGE_SAMPLES), 1);
        assert_eq!(m.gauges.latest(), vec![("gauge.test".to_string(), 42)]);
    }

    #[test]
    fn trace_events_stamp_host_and_sim_time() {
        let m = Machine::named(CostModel::default(), "nodeA");
        m.clock.charge(42);
        let cid = CorrelationId::allocate();
        m.trace_event_with("unit", EventKind::Fault, Some(cid));
        let snap = m.trace.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(&*snap[0].host, "nodeA");
        assert_eq!(snap[0].ts_ns, 42);
        assert_eq!(snap[0].correlation_id, Some(cid));
        // Clones share the trace ring.
        assert_eq!(m.clone().trace.len(), 1);
    }
}
