//! The shared context of one simulated machine (host).
//!
//! Every subsystem of one host — IPC, VM, disks, network interface —
//! charges the same clock and counter registry, so an experiment can ask
//! "how much total work did this host do" and "how many I/O operations
//! happened" exactly as the paper does in Section 9.

use crate::clock::SimClock;
use crate::cost::CostModel;
use crate::flight::FlightRecorder;
use crate::stats::{HotCounters, StatsRegistry};
use crate::topology::Topology;
use crate::trace::{CorrelationId, EventKind, LatencyRegistry, TraceBuffer, TraceEvent};
use std::sync::Arc;

/// Clock, statistics and cost model of one simulated host.
///
/// Cloning shares the underlying clock, counters, trace ring and latency
/// histograms.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Virtual clock charged by every component of this host.
    pub clock: SimClock,
    /// Event counters for this host.
    pub stats: StatsRegistry,
    /// Latency model.
    pub cost: Arc<CostModel>,
    /// Causal trace ring of this host.
    pub trace: Arc<TraceBuffer>,
    /// Named latency histograms of this host.
    pub latency: LatencyRegistry,
    /// Pre-resolved counters for the fault/IPC/disk hot paths, backed by
    /// the same atomics as `stats` (no per-increment name lookup).
    pub hot: Arc<HotCounters>,
    /// In-flight causal-chain table scanned by the stall watchdog.
    pub flight: Arc<FlightRecorder>,
    /// Host name shown in trace events ("local" unless on a fabric).
    host: Arc<str>,
}

impl Machine {
    /// Creates a machine with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Self::named(cost, "local")
    }

    /// Creates a machine with the given cost model and host name.
    pub fn named(cost: CostModel, host: &str) -> Self {
        let stats = StatsRegistry::new();
        let hot = Arc::new(HotCounters::new(&stats));
        Self {
            clock: SimClock::new(),
            stats,
            cost: Arc::new(cost),
            trace: Arc::new(TraceBuffer::default()),
            latency: LatencyRegistry::new(),
            hot,
            flight: Arc::new(FlightRecorder::new()),
            host: Arc::from(host),
        }
    }

    /// The host name stamped on this machine's trace events.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Records a trace event under the current thread's correlation id.
    pub fn trace_event(&self, actor: &str, kind: EventKind) {
        self.trace_event_with(actor, kind, crate::trace::current_correlation());
    }

    /// Records a trace event under an explicit correlation id.
    pub fn trace_event_with(&self, actor: &str, kind: EventKind, cid: Option<CorrelationId>) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace.record(TraceEvent::new(
            self.clock.now_ns(),
            self.host.clone(),
            actor,
            kind,
            cid,
        ));
    }

    /// A default UMA workstation.
    pub fn default_machine() -> Self {
        Self::new(CostModel::default())
    }

    /// A machine of the given multiprocessor class (Section 7).
    pub fn with_topology(topology: Topology) -> Self {
        Self::new(CostModel::for_topology(topology))
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::default_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_clock_and_stats() {
        let m = Machine::default_machine();
        let n = m.clone();
        m.clock.charge(5);
        m.stats.incr("x");
        assert_eq!(n.clock.now_ns(), 5);
        assert_eq!(n.stats.get("x"), 1);
    }

    #[test]
    fn topology_constructor_sets_cost_model() {
        let m = Machine::with_topology(Topology::Norma);
        assert_eq!(m.cost.topology, Topology::Norma);
    }

    #[test]
    fn trace_events_stamp_host_and_sim_time() {
        let m = Machine::named(CostModel::default(), "nodeA");
        m.clock.charge(42);
        let cid = CorrelationId::allocate();
        m.trace_event_with("unit", EventKind::Fault, Some(cid));
        let snap = m.trace.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(&*snap[0].host, "nodeA");
        assert_eq!(snap[0].ts_ns, 42);
        assert_eq!(snap[0].correlation_id, Some(cid));
        // Clones share the trace ring.
        assert_eq!(m.clone().trace.len(), 1);
    }
}
