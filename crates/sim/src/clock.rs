//! A virtual nanosecond clock shared by all simulated components.
//!
//! Components *charge* time to the clock rather than sleeping, so a
//! simulation of a multi-second 1987 workload finishes in microseconds of
//! wall time while still producing meaningful "elapsed time" figures. The
//! clock is monotone and thread-safe: concurrent charges accumulate, which
//! models the total machine work performed rather than the critical path.
//! Experiments that care about per-actor latency keep per-actor clocks via
//! [`SimClock::fork`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone virtual clock measured in simulated nanoseconds.
///
/// Cloning a `SimClock` yields a handle to the *same* underlying clock; use
/// [`SimClock::fork`] for an independent clock starting at the current time.
///
/// # Examples
///
/// ```
/// use machsim::SimClock;
///
/// let clock = SimClock::new();
/// clock.charge(1_500);
/// assert_eq!(clock.now_ns(), 1_500);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a new clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Advances the clock by `ns` nanoseconds and returns the new time.
    ///
    /// Charges from concurrent threads all land on the same counter, so a
    /// shared clock measures the **total work** performed by the machine,
    /// *not* the critical path: eight actors charging 1 µs each advance
    /// the clock by 8 µs even if they ran in parallel. That is the right
    /// semantics for the paper's "how much did this host do" questions,
    /// and it is why the latency histograms (fault-to-resolution and
    /// friends in [`crate::trace`]) are taken as *differences* of one
    /// thread's observations rather than absolute clock readings. For a
    /// single actor's isolated latency, charge a [`SimClock::fork`]ed
    /// clock instead — see `fork_measures_per_actor_latency` in this
    /// module's tests.
    pub fn charge(&self, ns: u64) -> u64 {
        self.ns.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Advances the clock by a whole number of microseconds.
    pub fn charge_us(&self, us: u64) -> u64 {
        self.charge(us.saturating_mul(1_000))
    }

    /// Advances the clock by a whole number of milliseconds.
    pub fn charge_ms(&self, ms: u64) -> u64 {
        self.charge(ms.saturating_mul(1_000_000))
    }

    /// Creates an independent clock initialized to this clock's current time.
    ///
    /// Useful for measuring a single actor's latency without other actors'
    /// concurrent charges being attributed to it.
    pub fn fork(&self) -> SimClock {
        SimClock {
            ns: Arc::new(AtomicU64::new(self.now_ns())),
        }
    }

    /// Moves the clock forward to at least `target_ns`.
    ///
    /// Used by event-style consumers (e.g. the network fabric delivering a
    /// message with a deadline) to express "this cannot have happened before
    /// `target_ns`". If the clock is already past the target, nothing
    /// happens.
    pub fn advance_to(&self, target_ns: u64) {
        let mut cur = self.ns.load(Ordering::Relaxed);
        while cur < target_ns {
            match self.ns.compare_exchange_weak(
                cur,
                target_ns,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A scoped stopwatch over a [`SimClock`], measuring elapsed simulated time.
#[derive(Debug)]
pub struct SimStopwatch {
    clock: SimClock,
    start_ns: u64,
}

impl SimStopwatch {
    /// Starts a stopwatch at the clock's current time.
    pub fn start(clock: &SimClock) -> Self {
        Self {
            clock: clock.clone(),
            start_ns: clock.now_ns(),
        }
    }

    /// Returns nanoseconds of simulated time elapsed since `start`.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now_ns(), 0);
    }

    #[test]
    fn charge_accumulates() {
        let c = SimClock::new();
        c.charge(10);
        c.charge(32);
        assert_eq!(c.now_ns(), 42);
    }

    #[test]
    fn unit_helpers_scale() {
        let c = SimClock::new();
        c.charge_us(3);
        assert_eq!(c.now_ns(), 3_000);
        c.charge_ms(2);
        assert_eq!(c.now_ns(), 2_003_000);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.charge(100);
        assert_eq!(b.now_ns(), 100);
    }

    #[test]
    fn fork_is_independent() {
        let a = SimClock::new();
        a.charge(50);
        let b = a.fork();
        a.charge(50);
        assert_eq!(b.now_ns(), 50);
        assert_eq!(a.now_ns(), 100);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = SimClock::new();
        c.advance_to(500);
        assert_eq!(c.now_ns(), 500);
        c.advance_to(100);
        assert_eq!(c.now_ns(), 500);
    }

    #[test]
    fn stopwatch_measures_elapsed() {
        let c = SimClock::new();
        c.charge(7);
        let w = SimStopwatch::start(&c);
        c.charge(35);
        assert_eq!(w.elapsed_ns(), 35);
    }

    /// The documented contract of `charge` under concurrency: the shared
    /// clock sums all actors' work (total work), while a per-actor fork
    /// sees only its own charges (that actor's latency). Histogram code
    /// in `trace` relies on exactly this split.
    #[test]
    fn fork_measures_per_actor_latency() {
        let shared = SimClock::new();
        let actors = 4;
        let per_actor_work = 1_000u64;
        let forks: Vec<SimClock> = (0..actors).map(|_| shared.fork()).collect();
        std::thread::scope(|s| {
            for mine in &forks {
                let shared = shared.clone();
                s.spawn(move || {
                    for _ in 0..per_actor_work {
                        shared.charge(1); // the machine did the work...
                        mine.charge(1); // ...and this actor waited for it
                    }
                });
            }
        });
        // Shared clock: total machine work, NOT the parallel critical path.
        assert_eq!(shared.now_ns(), actors as u64 * per_actor_work);
        // Each fork: only that actor's own latency.
        for mine in &forks {
            assert_eq!(mine.now_ns(), per_actor_work);
        }
    }

    #[test]
    fn concurrent_charges_accumulate() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        c.charge(1);
                    }
                });
            }
        });
        assert_eq!(c.now_ns(), 8_000);
    }
}
