//! Event counters for the quantities the paper reports.
//!
//! Section 9's claims are stated in *counts* ("the total number of I/O
//! operations can be reduced by a factor of 10") as much as in time. Every
//! subsystem therefore increments named counters in a shared registry, and
//! experiments snapshot/diff the registry around a workload.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A single named monotone counter.
///
/// Cheap to clone; clones share the same underlying value.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Well-known counter names used across the workspace.
///
/// Centralizing the names keeps experiment report columns stable.
pub mod keys {
    /// Disk read operations issued to any block device.
    pub const DISK_READS: &str = "disk.reads";
    /// Disk write operations issued to any block device.
    pub const DISK_WRITES: &str = "disk.writes";
    /// Bytes moved to/from disk.
    pub const DISK_BYTES: &str = "disk.bytes";
    /// IPC messages sent (local).
    pub const MSG_SENT: &str = "ipc.messages_sent";
    /// IPC messages received.
    pub const MSG_RECEIVED: &str = "ipc.messages_received";
    /// Messages delivered by direct sender-to-receiver handoff (the RPC
    /// fast path), skipping the queue entirely.
    pub const IPC_HANDOFFS: &str = "ipc.handoffs";
    /// Batched send/receive operations (one `send_many`/`receive_many`
    /// call moving two or more messages under a single charge).
    pub const IPC_BATCHES: &str = "ipc.batches";
    /// Network messages between hosts.
    pub const NET_MESSAGES: &str = "net.messages";
    /// Bytes carried over the network fabric.
    pub const NET_BYTES: &str = "net.bytes";
    /// Page faults resolved (all kinds).
    pub const VM_FAULTS: &str = "vm.faults";
    /// Page faults satisfied from the resident cache.
    pub const VM_CACHE_HITS: &str = "vm.cache_hits";
    /// Page faults that required a pager_data_request.
    pub const VM_PAGER_FILLS: &str = "vm.pager_fills";
    /// Copy-on-write page copies performed.
    pub const VM_COW_COPIES: &str = "vm.cow_copies";
    /// Pages written back through pager_data_write.
    pub const VM_PAGEOUTS: &str = "vm.pageouts";
    /// Zero-fill pages created.
    pub const VM_ZERO_FILLS: &str = "vm.zero_fills";
    /// Bytes copied by memcpy-style data movement.
    pub const BYTES_COPIED: &str = "mem.bytes_copied";
    /// Pages moved by remapping instead of copying.
    pub const PAGES_REMAPPED: &str = "mem.pages_remapped";
    /// Buffer cache hits (baseline UNIX path).
    pub const BCACHE_HITS: &str = "bcache.hits";
    /// Buffer cache misses (baseline UNIX path).
    pub const BCACHE_MISSES: &str = "bcache.misses";
    /// Frames reclaimed by the background pageout daemon.
    pub const VM_DAEMON_RECLAIMS: &str = "vm.daemon_reclaims";
    /// Faults resolved by zero fill after a pager timeout.
    pub const VM_TIMEOUT_ZERO_FILLS: &str = "vm.timeout_zero_fills";
    /// Shadow-chain collapses performed by the VM layer.
    pub const VM_SHADOW_COLLAPSES: &str = "vm.shadow_collapses";
    /// Supplied fills discarded because the page was flushed in transit.
    pub const VM_PARTIAL_SUPPLIES_DISCARDED: &str = "vm.partial_supplies_discarded";
    /// Objects whose pageout diverted to the default pager (laundry
    /// overflow or a failed external manager).
    pub const VM_DEFAULT_PAGER_TAKEOVERS: &str = "vm.default_pager_takeovers";
    /// Default-pager writes refused because the paging partition is full.
    pub const DEFAULT_PAGER_PARTITION_FULL: &str = "default_pager.partition_full";
    /// Messages dropped by the network fabric (partition or dead host).
    pub const NET_DROPPED: &str = "net.dropped";
    /// External memory objects terminated.
    pub const EMM_OBJECTS_TERMINATED: &str = "emm.objects_terminated";
    /// In-flight chains flagged as stalled by the watchdog.
    pub const WATCHDOG_STALLS: &str = "watchdog.stalls";
    /// Memory accesses that hit a frame (or replica) on the accessing node.
    pub const NUMA_LOCAL_HITS: &str = "numa.local_hits";
    /// Memory accesses that crossed to a frame on another node.
    pub const NUMA_REMOTE_HITS: &str = "numa.remote_hits";
    /// Read-only per-node replicas created for read-hot pages.
    pub const NUMA_REPLICATIONS: &str = "numa.replications";
    /// Write-hot pages migrated to their dominant accessor's node.
    pub const NUMA_MIGRATIONS: &str = "numa.migrations";
    /// Replica sets invalidated by a write shootdown.
    pub const NUMA_SHOOTDOWNS: &str = "numa.shootdowns";
    /// Trace events overwritten by ring overflow (exported, not counted
    /// in the registry — see `TraceBuffer::dropped`).
    pub const TRACE_DROPPED_EVENTS: &str = "trace.dropped_events";
    /// Faults parked as continuations by the async fault engine (the
    /// submitting thread was released while the pager works).
    pub const VM_ASYNC_PARKS: &str = "vm.async.parks";
    /// Parked continuations resumed by a completion (install, cancel,
    /// lock change) and re-stepped by the engine's completion loop.
    pub const VM_ASYNC_RESUMES: &str = "vm.async.resumes";
    /// Submissions that had to wait because the outstanding-fault table
    /// was at capacity (backpressure).
    pub const VM_ASYNC_BACKPRESSURE: &str = "vm.async.backpressure";
    /// Continuations resolved by their pager timeout (cleanly: the chain
    /// is ended, so the watchdog never counts these as stalls).
    pub const VM_ASYNC_TIMEOUTS: &str = "vm.async.timeouts";
    /// Continuations errored out because their pager's port died while
    /// the fault was parked.
    pub const VM_ASYNC_PAGER_DEAD: &str = "vm.async.pager_dead";
    /// Multi-run `pager_data_request` batches shipped by the engine (two
    /// or more coalesced runs to one pager in one batched send).
    pub const VM_PAGER_BATCHES: &str = "vm.pager_batches";
    /// Pager request runs deferred by a per-pager in-flight cap and
    /// released later as completions drained.
    pub const VM_PAGER_DEFERRED_RUNS: &str = "vm.pager_deferred_runs";
    /// Phase spans opened into the trace ring (see `machsim::span`).
    pub const TRACE_SPANS: &str = "trace.spans";
    /// Gauge sampling sweeps folded into this machine's registry (each
    /// sweep reads every registered gauge source once).
    pub const GAUGE_SAMPLES: &str = "trace.gauge_samples";
    /// Classified lock acquisitions that had to block (process-wide
    /// contention folded in as deltas when gauges are sampled — see
    /// `machsim::lockdep::contention_snapshot`).
    pub const LOCK_CONTENDED: &str = "lock.contended";
    /// Task units dispatched onto a simulated CPU by `machsched`.
    pub const SCHED_DISPATCHES: &str = "sched.dispatches";
    /// Units pulled from another CPU's run queue by an idle CPU.
    pub const SCHED_STEALS: &str = "sched.steals";
    /// Dispatches that ran a unit on a different CPU than its last run.
    pub const SCHED_MIGRATIONS: &str = "sched.migrations";
    /// Dispatches on the unit's preferred CPU (same CPU as last run, or
    /// first run on its home node).
    pub const SCHED_AFFINITY_HITS: &str = "sched.affinity_hits";
    /// Dispatches that missed both same-CPU and same-node preference.
    pub const SCHED_AFFINITY_MISSES: &str = "sched.affinity_misses";
    /// Units whose sim-time slice expired and were re-queued mid-run.
    pub const SCHED_PREEMPTIONS: &str = "sched.preemptions";

    /// Every counter key the workspace may create in a [`super::StatsRegistry`].
    ///
    /// The drift audit (`tests/counter_keys.rs`) walks a registry after a
    /// representative workload and asserts each live counter is listed
    /// here, so hot paths cannot grow stringly-typed one-off names.
    pub const ALL: &[&str] = &[
        DISK_READS,
        DISK_WRITES,
        DISK_BYTES,
        MSG_SENT,
        MSG_RECEIVED,
        IPC_HANDOFFS,
        IPC_BATCHES,
        NET_MESSAGES,
        NET_BYTES,
        VM_FAULTS,
        VM_CACHE_HITS,
        VM_PAGER_FILLS,
        VM_COW_COPIES,
        VM_PAGEOUTS,
        VM_ZERO_FILLS,
        BYTES_COPIED,
        PAGES_REMAPPED,
        BCACHE_HITS,
        BCACHE_MISSES,
        VM_DAEMON_RECLAIMS,
        VM_TIMEOUT_ZERO_FILLS,
        VM_SHADOW_COLLAPSES,
        VM_PARTIAL_SUPPLIES_DISCARDED,
        VM_DEFAULT_PAGER_TAKEOVERS,
        DEFAULT_PAGER_PARTITION_FULL,
        NET_DROPPED,
        EMM_OBJECTS_TERMINATED,
        WATCHDOG_STALLS,
        NUMA_LOCAL_HITS,
        NUMA_REMOTE_HITS,
        NUMA_REPLICATIONS,
        NUMA_MIGRATIONS,
        NUMA_SHOOTDOWNS,
        TRACE_DROPPED_EVENTS,
        VM_ASYNC_PARKS,
        VM_ASYNC_RESUMES,
        VM_ASYNC_BACKPRESSURE,
        VM_ASYNC_TIMEOUTS,
        VM_ASYNC_PAGER_DEAD,
        VM_PAGER_BATCHES,
        VM_PAGER_DEFERRED_RUNS,
        TRACE_SPANS,
        GAUGE_SAMPLES,
        LOCK_CONTENDED,
        SCHED_DISPATCHES,
        SCHED_STEALS,
        SCHED_MIGRATIONS,
        SCHED_AFFINITY_HITS,
        SCHED_AFFINITY_MISSES,
        SCHED_PREEMPTIONS,
    ];
}

/// Pre-resolved handles for the counters on the fault/IPC/disk hot paths.
///
/// `StatsRegistry::incr` costs a `RwLock` acquisition plus a `BTreeMap`
/// string lookup per increment — fine for reporting, far too heavy for a
/// path that the whole system serializes behind ("page faults become IPC,
/// so fault throughput *is* system throughput"). Subsystems that sit on
/// the hot path resolve their counters once at machine construction and
/// bump the shared atomics directly.
#[derive(Clone, Debug)]
pub struct HotCounters {
    /// [`keys::VM_FAULTS`]
    pub vm_faults: Counter,
    /// [`keys::VM_CACHE_HITS`]
    pub vm_cache_hits: Counter,
    /// [`keys::VM_PAGER_FILLS`]
    pub vm_pager_fills: Counter,
    /// [`keys::VM_ZERO_FILLS`]
    pub vm_zero_fills: Counter,
    /// [`keys::VM_COW_COPIES`]
    pub vm_cow_copies: Counter,
    /// [`keys::VM_PAGEOUTS`]
    pub vm_pageouts: Counter,
    /// [`keys::BYTES_COPIED`]
    pub bytes_copied: Counter,
    /// [`keys::MSG_SENT`]
    pub msg_sent: Counter,
    /// [`keys::MSG_RECEIVED`]
    pub msg_received: Counter,
    /// [`keys::IPC_HANDOFFS`]
    pub ipc_handoffs: Counter,
    /// [`keys::IPC_BATCHES`]
    pub ipc_batches: Counter,
    /// [`keys::DISK_READS`]
    pub disk_reads: Counter,
    /// [`keys::DISK_WRITES`]
    pub disk_writes: Counter,
    /// [`keys::DISK_BYTES`]
    pub disk_bytes: Counter,
    /// [`keys::NUMA_LOCAL_HITS`]
    pub numa_local_hits: Counter,
    /// [`keys::NUMA_REMOTE_HITS`]
    pub numa_remote_hits: Counter,
    /// [`keys::TRACE_SPANS`]
    pub trace_spans: Counter,
}

impl HotCounters {
    /// Resolves every hot-path counter in `registry` once.
    pub fn new(registry: &StatsRegistry) -> Self {
        HotCounters {
            vm_faults: registry.counter(keys::VM_FAULTS),
            vm_cache_hits: registry.counter(keys::VM_CACHE_HITS),
            vm_pager_fills: registry.counter(keys::VM_PAGER_FILLS),
            vm_zero_fills: registry.counter(keys::VM_ZERO_FILLS),
            vm_cow_copies: registry.counter(keys::VM_COW_COPIES),
            vm_pageouts: registry.counter(keys::VM_PAGEOUTS),
            bytes_copied: registry.counter(keys::BYTES_COPIED),
            msg_sent: registry.counter(keys::MSG_SENT),
            msg_received: registry.counter(keys::MSG_RECEIVED),
            ipc_handoffs: registry.counter(keys::IPC_HANDOFFS),
            ipc_batches: registry.counter(keys::IPC_BATCHES),
            disk_reads: registry.counter(keys::DISK_READS),
            disk_writes: registry.counter(keys::DISK_WRITES),
            disk_bytes: registry.counter(keys::DISK_BYTES),
            numa_local_hits: registry.counter(keys::NUMA_LOCAL_HITS),
            numa_remote_hits: registry.counter(keys::NUMA_REMOTE_HITS),
            trace_spans: registry.counter(keys::TRACE_SPANS),
        }
    }
}

/// A registry of named counters shared by one simulated machine.
#[derive(Clone, Debug, Default)]
pub struct StatsRegistry {
    counters: Arc<RwLock<BTreeMap<String, Counter>>>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter with the given name, creating it if needed.
    ///
    /// Creation is atomic: when several threads race to create the same
    /// name, exactly one `Counter` is inserted and every caller gets a
    /// clone of it. The read lock is only a fast path; losers of the race
    /// re-check under the write lock via the entry API instead of blindly
    /// inserting (which would strand earlier clones on a dead counter).
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Adds one to the named counter.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Returns the named counter's current value (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .read()
            .get(name)
            .map(Counter::get)
            .unwrap_or(0)
    }

    /// Captures the current value of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let values = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        StatsSnapshot { values }
    }
}

/// An immutable point-in-time copy of a registry's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    values: BTreeMap<String, u64>,
}

impl StatsSnapshot {
    /// Returns the value of `name` at snapshot time (zero if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Per-counter difference `later - self`, for counters in either.
    pub fn delta(&self, later: &StatsSnapshot) -> StatsSnapshot {
        let mut values = BTreeMap::new();
        for (k, v) in &later.values {
            values.insert(k.clone(), v.saturating_sub(self.get(k)));
        }
        // Counters present only in the earlier snapshot delta to zero.
        for k in self.values.keys() {
            values.entry(k.clone()).or_insert(0);
        }
        StatsSnapshot { values }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of counters captured.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn counter_clones_share_value() {
        let a = Counter::new();
        let b = a.clone();
        a.incr();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn registry_returns_same_counter() {
        let r = StatsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        assert_eq!(b.get(), 2);
        assert_eq!(r.get("x"), 2);
    }

    #[test]
    fn missing_counter_reads_zero() {
        assert_eq!(StatsRegistry::new().get("nope"), 0);
    }

    #[test]
    fn snapshot_delta() {
        let r = StatsRegistry::new();
        r.add("a", 3);
        let s1 = r.snapshot();
        r.add("a", 4);
        r.add("b", 1);
        let s2 = r.snapshot();
        let d = s1.delta(&s2);
        assert_eq!(d.get("a"), 4);
        assert_eq!(d.get("b"), 1);
    }

    #[test]
    fn delta_includes_stale_counters_as_zero() {
        let r = StatsRegistry::new();
        r.add("only_before", 2);
        let s1 = r.snapshot();
        let r2 = StatsRegistry::new();
        let s2 = r2.snapshot();
        let d = s1.delta(&s2);
        assert_eq!(d.get("only_before"), 0);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let r = StatsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        r.incr("hot");
                    }
                });
            }
        });
        assert_eq!(r.get("hot"), 4_000);
    }

    #[test]
    fn racing_creation_yields_one_counter() {
        // Regression: two writers racing to create the same name must end
        // up sharing one `Counter`; if each inserted its own, increments
        // through earlier clones would be lost from later reads.
        for _ in 0..50 {
            let r = StatsRegistry::new();
            let handles: Vec<Counter> = std::thread::scope(|s| {
                let threads: Vec<_> = (0..8)
                    .map(|_| {
                        let r = r.clone();
                        s.spawn(move || {
                            let c = r.counter("contended");
                            c.incr();
                            c
                        })
                    })
                    .collect();
                threads.into_iter().map(|t| t.join().unwrap()).collect()
            });
            // Every clone observes every increment, and so does the name.
            for h in &handles {
                assert_eq!(h.get(), 8);
            }
            assert_eq!(r.get("contended"), 8);
        }
    }

    #[test]
    fn hot_counters_share_registry_values() {
        let r = StatsRegistry::new();
        let hot = HotCounters::new(&r);
        hot.vm_faults.incr();
        r.incr(keys::VM_FAULTS);
        assert_eq!(r.get(keys::VM_FAULTS), 2);
        assert_eq!(hot.vm_faults.get(), 2);
    }

    #[test]
    fn snapshot_iterates_sorted() {
        let r = StatsRegistry::new();
        r.incr("b");
        r.incr("a");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
