//! The multiprocessor taxonomy of Section 7: UMA, NUMA and NORMA machines.
//!
//! The paper gives concrete access-time anchors for each class:
//!
//! * **UMA** (Encore MultiMax, Sequent Balance, VAX 8300/8800): "considerably
//!   less than one microsecond (on average)" for any memory access.
//! * **NUMA** (BBN Butterfly, IBM RP3, C.mmp, CM*): "remote access times are
//!   roughly 10 times greater than local access times"; ~5 microseconds for
//!   a Butterfly remote reference.
//! * **NORMA** (Intel HyperCube, Ethernet workstation farms): no hardware
//!   remote access at all; "remote communication times are measured in the
//!   hundreds of microseconds".
//!
//! Experiment E10 (`bench/topology`) regenerates that table from this
//! module's cost parameters.
//!
//! This module is the *only* place the word-access anchors are written
//! down: [`crate::cost::CostModel::word_access_ns`] delegates here, so a
//! NUMA experiment and the cost model can never disagree about what a
//! remote reference costs.

use std::fmt;

/// Whether an access touches memory local to the issuing CPU or remote.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// Memory attached to (or equally distant from) the issuing CPU.
    Local,
    /// Memory attached to another node of the machine.
    Remote,
}

/// One of the paper's three MIMD multiprocessor classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Uniform memory access: fully shared memory over a snooping bus.
    Uma,
    /// Non-uniform memory access: per-CPU local memory plus a switch.
    Numa,
    /// No remote memory access: message-only interconnect.
    Norma,
}

impl Topology {
    /// All three classes, in the order the paper introduces them.
    pub const ALL: [Topology; 3] = [Topology::Uma, Topology::Numa, Topology::Norma];

    /// Nanoseconds for a single word access of the given kind.
    ///
    /// `Remote` on a NORMA machine returns the cost of the software message
    /// round that substitutes for the missing hardware path, since NORMAs
    /// "provide no hardware supplied mechanism for remote memory access".
    pub fn word_access_ns(self, kind: MemoryKind) -> u64 {
        match (self, kind) {
            // Sub-microsecond for every access on a MultiMax-class bus.
            (Topology::Uma, _) => 400,
            (Topology::Numa, MemoryKind::Local) => 500,
            // Butterfly: remote roughly 10x local, ~5 microseconds.
            (Topology::Numa, MemoryKind::Remote) => 5_000,
            (Topology::Norma, MemoryKind::Local) => 400,
            // HyperCube: hundreds of microseconds per remote interaction.
            (Topology::Norma, MemoryKind::Remote) => 300_000,
        }
    }

    /// Ratio of remote to local access time, rounded to the nearest integer.
    pub fn remote_to_local_ratio(self) -> u64 {
        let local = self.word_access_ns(MemoryKind::Local).max(1);
        let remote = self.word_access_ns(MemoryKind::Remote);
        (remote + local / 2) / local
    }

    /// Whether local and remote word accesses cost differently on this
    /// class — i.e. whether frame *placement* is visible to the clock.
    ///
    /// The NUMA placement policies (first-touch, replication, migration)
    /// key off this: on a UMA machine they would burn copies for no
    /// latency benefit, so the VM layer leaves them dormant.
    pub fn is_asymmetric(self) -> bool {
        self.word_access_ns(MemoryKind::Remote) != self.word_access_ns(MemoryKind::Local)
    }

    /// Whether the hardware itself can satisfy a remote memory reference.
    ///
    /// On a NORMA machine shared memory must be synthesized in software (the
    /// network shared memory server of Section 4.2); on UMA and NUMA machines
    /// the hardware does it.
    pub fn hardware_remote_access(self) -> bool {
        !matches!(self, Topology::Norma)
    }

    /// A representative 1987 machine for the class, for report labels.
    pub fn exemplar(self) -> &'static str {
        match self {
            Topology::Uma => "Encore MultiMax",
            Topology::Numa => "BBN Butterfly",
            Topology::Norma => "Intel HyperCube",
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Topology::Uma => "UMA",
            Topology::Numa => "NUMA",
            Topology::Norma => "NORMA",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uma_is_uniform() {
        assert_eq!(
            Topology::Uma.word_access_ns(MemoryKind::Local),
            Topology::Uma.word_access_ns(MemoryKind::Remote)
        );
        assert_eq!(Topology::Uma.remote_to_local_ratio(), 1);
    }

    #[test]
    fn uma_is_submicrosecond() {
        // "considerably less than one microsecond (on average) for a MultiMax".
        assert!(Topology::Uma.word_access_ns(MemoryKind::Remote) < 1_000);
    }

    #[test]
    fn numa_remote_is_roughly_ten_x() {
        let r = Topology::Numa.remote_to_local_ratio();
        assert!((8..=12).contains(&r), "NUMA ratio {r} not ~10x");
    }

    #[test]
    fn numa_remote_is_butterfly_scale() {
        // "five microseconds for a Butterfly".
        assert_eq!(Topology::Numa.word_access_ns(MemoryKind::Remote), 5_000);
    }

    #[test]
    fn norma_remote_is_hundreds_of_microseconds() {
        let ns = Topology::Norma.word_access_ns(MemoryKind::Remote);
        assert!((100_000..1_000_000).contains(&ns));
    }

    #[test]
    fn only_uma_is_symmetric() {
        assert!(!Topology::Uma.is_asymmetric());
        assert!(Topology::Numa.is_asymmetric());
        assert!(Topology::Norma.is_asymmetric());
    }

    #[test]
    fn only_norma_lacks_hardware_remote_access() {
        assert!(Topology::Uma.hardware_remote_access());
        assert!(Topology::Numa.hardware_remote_access());
        assert!(!Topology::Norma.hardware_remote_access());
    }

    #[test]
    fn ratios_are_ordered_uma_numa_norma() {
        let r: Vec<u64> = Topology::ALL
            .iter()
            .map(|t| t.remote_to_local_ratio())
            .collect();
        assert!(r[0] < r[1] && r[1] < r[2], "ratios {r:?} not increasing");
    }

    #[test]
    fn display_names() {
        assert_eq!(Topology::Uma.to_string(), "UMA");
        assert_eq!(Topology::Numa.to_string(), "NUMA");
        assert_eq!(Topology::Norma.to_string(), "NORMA");
    }
}
