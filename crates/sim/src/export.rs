//! Standard-format exporters: Chrome trace-event JSON and Prometheus text.
//!
//! The trace ring and the registries are only reachable from inside the
//! process; this module renders them in the two formats standard tooling
//! consumes:
//!
//! * [`chrome_trace`] emits catapult `traceEvents` JSON — one async-span
//!   track per [`CorrelationId`](crate::trace::CorrelationId), so loading
//!   the file in Perfetto (ui.perfetto.dev) or `chrome://tracing` shows
//!   each fault chain as one row of hops.
//! * [`prometheus`] emits the text exposition format (`# TYPE` lines,
//!   counters, and cumulative histogram buckets from the log2
//!   [`Histogram`](crate::trace::Histogram)).
//!
//! Both are pure functions over snapshots, so a remote client that fetched
//! a `host_statistics` reply over IPC can render the same text locally.
//! The module also carries minimal parsers ([`parse_json`],
//! [`parse_prometheus`]) used by the export smoke test to round-trip the
//! rendered output — no external JSON/metrics crates exist in this tree.

use crate::gauge::GaugeSeries;
use crate::machine::Machine;
use crate::stats::StatsSnapshot;
use crate::trace::{Histogram, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

// ----- Chrome trace-event (catapult) JSON -----

/// Escapes `s` as the contents of a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microsecond timestamp with sub-microsecond precision (catapult `ts` is
/// in microseconds; simulated clocks are in nanoseconds).
fn ts_us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

/// Renders trace events as a catapult (`chrome://tracing` / Perfetto)
/// JSON document.
///
/// Every host becomes a process (`pid` + `process_name` metadata). Every
/// correlated chain becomes one async track (`ph:"b"` … `ph:"n"` hops …
/// `ph:"e"` sharing `cat`/`id`/`pid`), so the canonical fault chain shows
/// its six hops on a single row. Uncorrelated events render as thread
/// instants. `dropped` (from `TraceBuffer::dropped`) is recorded under
/// `otherData` so silent ring overflow is visible in the artifact itself.
pub fn chrome_trace(events: &[TraceEvent], dropped: u64) -> String {
    chrome_trace_with(events, dropped, &[])
}

/// The JSON args fragment carrying span identity, or "" for plain events.
fn span_args(e: &TraceEvent) -> String {
    e.span.map_or_else(String::new, |s| {
        format!(",\"span\":{},\"span_parent\":{}", s.id, s.parent)
    })
}

/// [`chrome_trace`] plus `ph:"C"` counter tracks, one per sampled gauge
/// series — Perfetto renders each as a little area chart above the event
/// tracks, so queue depths line up visually with the chains they slowed.
pub fn chrome_trace_with(events: &[TraceEvent], dropped: u64, gauges: &[GaugeSeries]) -> String {
    // Stable pid per host, in order of first appearance.
    let mut hosts: Vec<Arc<str>> = Vec::new();
    for e in events {
        if !hosts.contains(&e.host) {
            hosts.push(e.host.clone());
        }
    }
    let pid_of =
        |host: &Arc<str>| -> usize { hosts.iter().position(|h| h == host).map_or(0, |i| i + 1) };

    let mut records: Vec<String> = Vec::new();
    for (i, host) in hosts.iter().enumerate() {
        records.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            json_escape(host)
        ));
    }

    // Group correlated events into chains, preserving sequence order.
    let mut chains: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        if let Some(cid) = e.correlation_id {
            chains.entry(cid.raw()).or_default().push(e);
        } else {
            // Uncorrelated: a plain thread-scoped instant event.
            records.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                 \"pid\":{},\"tid\":0,\"args\":{{\"actor\":\"{}\",\"seq\":{}{}}}}}",
                json_escape(&e.kind.to_string()),
                ts_us(e.ts_ns),
                pid_of(&e.host),
                json_escape(&e.actor),
                e.seq,
                span_args(e)
            ));
        }
    }

    for (cid, chain) in &chains {
        let first = chain.first().expect("chains are non-empty");
        let last = chain.last().expect("chains are non-empty");
        // The whole chain renders on one async track: catapult groups
        // async events by (cat, id, pid), so every hop uses the first
        // event's pid and carries its true host in args.
        let pid = pid_of(&first.host);
        records.push(format!(
            "{{\"name\":\"cid#{cid}\",\"cat\":\"chain\",\"ph\":\"b\",\"id\":{cid},\
             \"ts\":{},\"pid\":{pid},\"tid\":{cid}}}",
            ts_us(first.ts_ns)
        ));
        for e in chain {
            records.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"chain\",\"ph\":\"n\",\"id\":{cid},\"ts\":{},\
                 \"pid\":{pid},\"tid\":{cid},\
                 \"args\":{{\"actor\":\"{}\",\"host\":\"{}\",\"seq\":{}{}}}}}",
                json_escape(&e.kind.to_string()),
                ts_us(e.ts_ns),
                json_escape(&e.actor),
                json_escape(&e.host),
                e.seq,
                span_args(e)
            ));
        }
        records.push(format!(
            "{{\"name\":\"cid#{cid}\",\"cat\":\"chain\",\"ph\":\"e\",\"id\":{cid},\
             \"ts\":{},\"pid\":{pid},\"tid\":{cid}}}",
            ts_us(last.ts_ns)
        ));
    }

    for g in gauges {
        for &(ts_ns, value) in &g.samples {
            records.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"gauge\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                 \"tid\":0,\"args\":{{\"value\":{value}}}}}",
                json_escape(&g.name),
                ts_us(ts_ns)
            ));
        }
    }

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(&records.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    let _ = write!(
        out,
        "\"trace.dropped_events\":\"{dropped}\",\"clock\":\"simulated-ns\""
    );
    out.push_str("}}\n");
    out
}

/// Renders `machine`'s trace ring (plus its sampled gauge series) as
/// catapult JSON (see [`chrome_trace_with`]).
pub fn chrome_trace_for(machine: &Machine) -> String {
    chrome_trace_with(
        &machine.trace.snapshot(),
        machine.trace.dropped(),
        &machine.gauges.snapshot(),
    )
}

// ----- Prometheus text exposition -----

/// Maps a dotted counter/histogram name onto a Prometheus metric name.
pub fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Histogram material decoupled from a live [`Histogram`] — what a
/// snapshot fetched over IPC carries.
#[derive(Clone, Debug)]
pub struct HistogramData {
    /// Dotted histogram name ("vm.fault_to_resolution").
    pub name: String,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Non-empty buckets as `(inclusive_upper_bound_ns, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramData {
    /// Snapshots a live histogram.
    pub fn of(name: &str, h: &Histogram) -> Self {
        HistogramData {
            name: name.to_string(),
            count: h.count(),
            sum_ns: h.sum_ns(),
            buckets: h.buckets(),
        }
    }
}

/// Renders counter and histogram snapshots in the Prometheus text
/// exposition format.
///
/// Counters keep their dotted name in a `# HELP` line and expose a
/// sanitized metric name. Histograms render cumulative `_bucket{le=...}`
/// lines from the log2 buckets plus `_sum`/`_count`, with bucket bounds in
/// nanoseconds. `dropped` is exported as `trace_dropped_events` so ring
/// overflow is never silent.
pub fn prometheus_from(
    counters: &[(String, u64)],
    histograms: &[HistogramData],
    dropped: u64,
) -> String {
    let mut out = String::new();
    for (name, value) in counters {
        let metric = prom_name(name);
        let _ = writeln!(out, "# HELP {metric} {name}");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    let _ = writeln!(
        out,
        "# HELP trace_dropped_events trace.dropped_events\n\
         # TYPE trace_dropped_events counter\n\
         trace_dropped_events {dropped}"
    );
    for h in histograms {
        let metric = format!("{}_ns", prom_name(&h.name));
        let _ = writeln!(out, "# HELP {metric} {} (log2 buckets, ns)", h.name);
        let _ = writeln!(out, "# TYPE {metric} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in &h.buckets {
            cumulative += count;
            let _ = writeln!(out, "{metric}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{metric}_sum {}", h.sum_ns);
        let _ = writeln!(out, "{metric}_count {}", h.count);
    }
    out
}

/// Renders live counters and latency histograms in Prometheus text
/// format (see [`prometheus_from`]).
pub fn prometheus(
    counters: &StatsSnapshot,
    histograms: &[(String, Arc<Histogram>)],
    dropped: u64,
) -> String {
    let counters: Vec<(String, u64)> = counters.iter().map(|(k, v)| (k.to_string(), v)).collect();
    let histograms: Vec<HistogramData> = histograms
        .iter()
        .map(|(name, h)| HistogramData::of(name, h))
        .collect();
    prometheus_from(&counters, &histograms, dropped)
}

/// The process-wide lock-contention profile as exporter material:
/// per-class `lock.contended.<class>` counters plus `lock.wait.<class>` /
/// `lock.hold.<class>` histograms (wall-ns — host diagnostics, kept apart
/// from any sim-time latency registry; see [`crate::lockdep`]).
pub fn lock_contention_data() -> (Vec<(String, u64)>, Vec<HistogramData>) {
    let mut counters = Vec::new();
    let mut histograms = Vec::new();
    for c in crate::lockdep::contention_snapshot() {
        let class = c.class.name();
        counters.push((format!("lock.contended.{class}"), c.contended));
        histograms.push(HistogramData::of(&format!("lock.wait.{class}"), c.wait_ns));
        histograms.push(HistogramData::of(&format!("lock.hold.{class}"), c.hold_ns));
    }
    (counters, histograms)
}

/// Renders gauges' most recent sampled values as Prometheus gauges.
pub fn prometheus_gauges(latest: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (name, value) in latest {
        let metric = prom_name(name);
        let _ = writeln!(out, "# HELP {metric} {name}");
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {value}");
    }
    out
}

/// Renders `machine`'s registries in Prometheus text format, including
/// the per-LockClass contention profile and the latest gauge samples.
pub fn prometheus_for(machine: &Machine) -> String {
    let (lock_counters, lock_histograms) = lock_contention_data();
    let mut counters: Vec<(String, u64)> = machine
        .stats
        .snapshot()
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    counters.extend(lock_counters);
    let mut histograms: Vec<HistogramData> = machine
        .latency
        .snapshot()
        .iter()
        .map(|(name, h)| HistogramData::of(name, h))
        .collect();
    histograms.extend(lock_histograms);
    let mut out = prometheus_from(&counters, &histograms, machine.trace.dropped());
    out.push_str(&prometheus_gauges(&machine.gauges.latest()));
    out
}

// ----- minimal JSON parser (for export validation) -----

/// A parsed JSON value (validation-grade; numbers are `f64`).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` when this value is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when this value is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.pos, self.bytes[self.pos] as char
            ))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(JsonValue::Str(self.parse_string()?)),
            b't' => self.parse_keyword("true", JsonValue::Bool(true)),
            b'f' => self.parse_keyword("false", JsonValue::Bool(false)),
            b'n' => self.parse_keyword("null", JsonValue::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or("unterminated string")?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Validation-grade: surrogate pairs are not
                            // recombined (the exporter never emits them).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found '{}'", other as char)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found '{}'", other as char)),
            }
        }
    }
}

/// Parses a JSON document (objects, arrays, strings, numbers, keywords).
///
/// Validation-grade: exists so the export smoke test can prove the
/// [`chrome_trace`] output is well-formed without an external JSON crate.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let mut p = JsonParser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Validates a catapult document rendered by [`chrome_trace`]: it parses,
/// has a `traceEvents` array, and every event carries `ts`, `ph` and
/// `pid`. Returns the number of events.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc = parse_json(json)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    for (i, e) in events.iter().enumerate() {
        for field in ["ts", "ph", "pid"] {
            if e.get(field).is_none() {
                return Err(format!("event {i} lacks required field '{field}'"));
            }
        }
    }
    Ok(events.len())
}

/// Parses Prometheus text exposition into `metric{labels} -> value`.
///
/// The inverse of [`prometheus`] as far as the smoke test needs: comments
/// are skipped, each sample line must be `name[{labels}] value`.
pub fn parse_prometheus(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value", lineno + 1))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad value ({e})", lineno + 1))?;
        let name = name.trim();
        let bare = name.split('{').next().unwrap_or(name);
        if bare.is_empty()
            || !bare
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name '{name}'", lineno + 1));
        }
        out.insert(name.to_string(), value);
    }
    Ok(out)
}

// ----- tests -----

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CorrelationId, EventKind, TraceBuffer};

    fn ev(
        ts: u64,
        host: &str,
        actor: &str,
        kind: EventKind,
        cid: Option<CorrelationId>,
    ) -> TraceEvent {
        TraceEvent::new(ts, Arc::from(host), actor, kind, cid)
    }

    fn fault_chain(cid: CorrelationId) -> Vec<TraceEvent> {
        [
            (10, EventKind::Fault, "vm.fault"),
            (20, EventKind::MsgSend, "port#1"),
            (30, EventKind::DataRequest, "pager.fs"),
            (40, EventKind::DiskRead, "disk"),
            (50, EventKind::DataProvided, "kernel"),
            (60, EventKind::Resume, "vm.fault"),
        ]
        .into_iter()
        .map(|(ts, k, a)| ev(ts, "local", a, k, Some(cid)))
        .collect()
    }

    #[test]
    fn chrome_trace_is_valid_and_keeps_chain_on_one_track() {
        let cid = CorrelationId::allocate();
        let mut events = fault_chain(cid);
        events.push(ev(70, "local", "daemon", EventKind::DiskWrite, None));
        let json = chrome_trace(&events, 3);
        let n = validate_chrome_trace(&json).expect("valid catapult JSON");
        // 1 process_name + 1 uncorrelated instant + b + 6 hops + e.
        assert_eq!(n, 10);
        let doc = parse_json(&json).unwrap();
        let te = doc.get("traceEvents").unwrap().as_array().unwrap();
        // All chain events share one (cat, id, pid) async track.
        let chain_events: Vec<_> = te
            .iter()
            .filter(|e| e.get("cat").and_then(JsonValue::as_str) == Some("chain"))
            .collect();
        assert_eq!(chain_events.len(), 8);
        let id0 = chain_events[0].get("id").cloned();
        assert!(chain_events.iter().all(|e| e.get("id").cloned() == id0));
        let hop_names: Vec<&str> = chain_events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("n"))
            .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
            .collect();
        assert_eq!(
            hop_names,
            vec![
                "fault",
                "msg_send",
                "data_request",
                "disk_read",
                "data_provided",
                "resume"
            ]
        );
        // Dropped-event count is visible in the artifact.
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("trace.dropped_events"))
                .and_then(JsonValue::as_str),
            Some("3")
        );
    }

    #[test]
    fn chrome_trace_assigns_pids_per_host() {
        let a = ev(1, "alpha", "x", EventKind::NetSend, None);
        let b = ev(2, "beta", "y", EventKind::NetRecv, None);
        let json = chrome_trace(&[a, b], 0);
        validate_chrome_trace(&json).unwrap();
        let doc = parse_json(&json).unwrap();
        let te = doc.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<&str> = te
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")))
            .filter_map(JsonValue::as_str)
            .collect();
        assert_eq!(names, vec!["alpha", "beta"]);
    }

    #[test]
    fn chrome_trace_escapes_awkward_names() {
        let e = ev(
            1,
            "h",
            "actor \"quoted\"\nnewline\\slash",
            EventKind::Fault,
            None,
        );
        let json = chrome_trace(&[e], 0);
        assert_eq!(validate_chrome_trace(&json).unwrap(), 2);
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let json = chrome_trace(&[], 0);
        assert_eq!(validate_chrome_trace(&json).unwrap(), 0);
    }

    #[test]
    fn prometheus_round_trips_through_parser() {
        let m = Machine::default_machine();
        m.stats.add("vm.faults", 42);
        m.stats.add("disk.reads", 7);
        m.latency.record("vm.fault_to_resolution", 900);
        m.latency.record("vm.fault_to_resolution", 100_000);
        let text = prometheus_for(&m);
        assert!(text.contains("# TYPE vm_faults counter"));
        assert!(text.contains("# TYPE vm_fault_to_resolution_ns histogram"));
        assert!(text.contains("vm_fault_to_resolution_ns_bucket{le=\"1023\"} 1"));
        assert!(text.contains("trace_dropped_events 0"));
        let parsed = parse_prometheus(&text).expect("parsable");
        assert_eq!(parsed.get("vm_faults"), Some(&42.0));
        assert_eq!(parsed.get("disk_reads"), Some(&7.0));
        assert_eq!(parsed.get("vm_fault_to_resolution_ns_count"), Some(&2.0));
        assert_eq!(
            parsed.get("vm_fault_to_resolution_ns_bucket{le=\"+Inf\"}"),
            Some(&2.0)
        );
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let h = Histogram::new();
        for ns in [1u64, 2, 500, 100_000] {
            h.record(ns);
        }
        let text = prometheus(
            &crate::stats::StatsRegistry::new().snapshot(),
            &[("lat".to_string(), Arc::new(h))],
            0,
        );
        let parsed = parse_prometheus(&text).unwrap();
        let mut bucket_values: Vec<f64> = parsed
            .iter()
            .filter(|(k, _)| k.starts_with("lat_ns_bucket"))
            .map(|(_, v)| *v)
            .collect();
        bucket_values.sort_by(f64::total_cmp);
        assert!(
            bucket_values.windows(2).all(|w| w[0] <= w[1]),
            "cumulative counts never decrease: {bucket_values:?}"
        );
        assert_eq!(*bucket_values.last().unwrap(), 4.0);
    }

    #[test]
    fn chrome_trace_carries_span_args_and_gauge_tracks() {
        let m = Machine::default_machine();
        let cid = CorrelationId::allocate();
        let _scope = crate::trace::CorrelationScope::enter(cid);
        let root = m.span_open_under("fault.submit", 0);
        m.clock.charge(1_000);
        m.span_close("fault.submit", root);
        m.gauges.register("gauge.test.depth", || 5);
        m.sample_gauges();
        let json = chrome_trace_for(&m);
        validate_chrome_trace(&json).expect("valid with spans and gauges");
        let doc = parse_json(&json).expect("export parses");
        let te = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        let opens: Vec<_> = te
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("fault.submit:open"))
            .collect();
        assert_eq!(opens.len(), 1);
        assert_eq!(
            opens[0].get("args").and_then(|a| a.get("span")),
            Some(&JsonValue::Num(root as f64))
        );
        assert!(te.iter().any(|e| {
            e.get("ph").and_then(JsonValue::as_str) == Some("C")
                && e.get("name").and_then(JsonValue::as_str) == Some("gauge.test.depth")
        }));
    }

    #[test]
    fn prometheus_includes_lock_contention_and_gauges() {
        let m = Machine::default_machine();
        // Touch a classified lock so at least one class has traffic.
        let lock = crate::lockdep::ClassMutex::new(crate::lockdep::LockClass::Queues, ());
        drop(lock.lock());
        m.gauges.register("gauge.vm.free_frames", || 128);
        m.sample_gauges();
        let text = prometheus_for(&m);
        assert!(
            text.contains("# TYPE lock_hold_queues_ns histogram"),
            "per-class hold histogram exported"
        );
        assert!(text.contains("lock_contended_queues"));
        assert!(text.contains("# TYPE gauge_vm_free_frames gauge"));
        let parsed = parse_prometheus(&text).expect("parsable");
        assert_eq!(parsed.get("gauge_vm_free_frames"), Some(&128.0));
        assert!(parsed.contains_key("lock_hold_queues_ns_count"));
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(
            prom_name("vm.fault_to_resolution"),
            "vm_fault_to_resolution"
        );
        assert_eq!(prom_name("ipc.messages_sent"), "ipc_messages_sent");
        assert_eq!(prom_name("9lives"), "_9lives");
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn json_parser_accepts_the_usual_shapes() {
        let v = parse_json("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":null,\"d\":true},\"e\":\"x\\ny\"}")
            .unwrap();
        assert_eq!(v.get("e").and_then(JsonValue::as_str), Some("x\ny"));
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("d")),
            Some(&JsonValue::Bool(true))
        );
    }

    #[test]
    fn dropped_counter_survives_ring_overflow() {
        let t = TraceBuffer::new(2);
        for i in 0..5u64 {
            t.record(ev(i, "h", "a", EventKind::Fault, None));
        }
        let json = chrome_trace(&t.snapshot(), t.dropped());
        let doc = parse_json(&json).unwrap();
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("trace.dropped_events"))
                .and_then(JsonValue::as_str),
            Some("3")
        );
    }
}
