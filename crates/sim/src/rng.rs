//! A tiny deterministic PRNG for workload generation inside substrates.
//!
//! The heavyweight `rand` crate is used in benchmark/workload crates; the
//! substrate crates only need reproducible jitter and should not carry the
//! dependency. SplitMix64 is small, fast and statistically adequate for
//! workload shuffling.

/// A SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use machsim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // workload-generation purposes of this crate.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0, "denominator must be nonzero");
        self.next_below(den) < num
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn bounded_values_cover_range() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0, 10));
        assert!(r.chance(10, 10));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "bound must be nonzero")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
