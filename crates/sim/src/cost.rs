//! Cost model for the simulated 1987 machine.
//!
//! All latency constants live here — except the per-topology word-access
//! anchors, which live solely in [`crate::topology`] and are reached
//! through [`CostModel::word_access_ns`] — so that every experiment draws
//! from one consistent machine description. The anchors:
//!
//! * CPU work is charged per simulated instruction at ~1 MIPS (a VAX 11/780
//!   is the original "1 MIPS" machine).
//! * Copying memory costs per-byte bus time; mapping a page (copy-on-write)
//!   costs a small constant, which is the whole point of the duality: for
//!   large transfers, remapping beats copying.
//! * A disk operation costs ~20 ms access plus transfer at ~1 MB/s — the
//!   ratio between a cache hit and a disk access is what drives Section 9's
//!   compilation results.
//! * Network messages cost per the NORMA numbers in Section 7.

use crate::topology::{MemoryKind, Topology};

/// Latency parameters of the simulated machine.
///
/// The defaults describe a 1987 VAX-class workstation; constructors exist
/// for each multiprocessor topology of Section 7.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Machine class, which sets memory access asymmetry.
    pub topology: Topology,
    /// Nanoseconds per simulated CPU instruction (1 MIPS => 1000).
    pub instruction_ns: u64,
    /// Nanoseconds to copy one byte memory-to-memory.
    pub copy_byte_ns: u64,
    /// Fixed cost of entering the kernel (trap + dispatch).
    pub syscall_ns: u64,
    /// Fixed cost of a page-table/pmap update for one page.
    pub map_page_ns: u64,
    /// Fixed cost of handling a page fault in the machine-independent layer
    /// (map lookup, object lookup, queue moves), excluding data transfer.
    pub fault_overhead_ns: u64,
    /// Fixed per-message IPC cost (header processing, queueing, wakeup).
    pub message_ns: u64,
    /// Per-message IPC cost when the sender hands the message directly to
    /// a waiting receiver, skipping the queue and the scheduler wakeup.
    /// Modeled after the "reducing overhead in RPC" thread-handoff
    /// optimization: no queue insertion, no condvar broadcast, just a
    /// register-to-register style transfer plus the header processing.
    pub handoff_ns: u64,
    /// Disk positioning cost per operation (seek + rotation).
    pub disk_access_ns: u64,
    /// Disk transfer cost per byte (~1 MB/s).
    pub disk_byte_ns: u64,
    /// Network per-message latency between hosts.
    pub net_message_ns: u64,
    /// Network per-byte transfer cost (10 Mbit Ethernet ~= 800 ns/byte).
    pub net_byte_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::uma()
    }
}

impl CostModel {
    /// A tightly coupled shared-bus multiprocessor (MultiMax class).
    pub fn uma() -> Self {
        Self::for_topology(Topology::Uma)
    }

    /// A switch-connected NUMA machine (Butterfly class).
    pub fn numa() -> Self {
        Self::for_topology(Topology::Numa)
    }

    /// A message-only NORMA machine (HyperCube / Ethernet class).
    pub fn norma() -> Self {
        Self::for_topology(Topology::Norma)
    }

    /// Builds the model for a given topology with 1987-era constants.
    pub fn for_topology(topology: Topology) -> Self {
        Self {
            topology,
            instruction_ns: 1_000,
            copy_byte_ns: 100,
            syscall_ns: 20_000,
            map_page_ns: 10_000,
            fault_overhead_ns: 50_000,
            message_ns: 100_000,
            handoff_ns: 25_000,
            disk_access_ns: 20_000_000,
            disk_byte_ns: 1_000,
            net_message_ns: Topology::Norma.word_access_ns(MemoryKind::Remote),
            net_byte_ns: 800,
        }
    }

    /// Cost of copying `bytes` bytes memory-to-memory.
    pub fn copy_cost_ns(&self, bytes: u64) -> u64 {
        bytes.saturating_mul(self.copy_byte_ns)
    }

    /// Cost of transferring `pages` pages by remapping (the COW path).
    pub fn remap_cost_ns(&self, pages: u64) -> u64 {
        pages.saturating_mul(self.map_page_ns)
    }

    /// Cost of one disk operation transferring `bytes` bytes.
    pub fn disk_op_ns(&self, bytes: u64) -> u64 {
        self.disk_access_ns + bytes.saturating_mul(self.disk_byte_ns)
    }

    /// Cost of one network message carrying `bytes` bytes.
    pub fn net_op_ns(&self, bytes: u64) -> u64 {
        self.net_message_ns + bytes.saturating_mul(self.net_byte_ns)
    }

    /// Cost of a single word access of the given kind on this machine.
    ///
    /// Pure delegation to [`Topology::word_access_ns`]: the per-class
    /// anchors are deliberately not duplicated here.
    pub fn word_access_ns(&self, kind: MemoryKind) -> u64 {
        self.topology.word_access_ns(kind)
    }

    /// The message size (bytes) above which remapping a region beats
    /// copying it, for transfers of whole `page_size` pages.
    ///
    /// This is the crossover experiment E15 probes empirically.
    pub fn analytic_cow_crossover_bytes(&self, page_size: u64) -> u64 {
        // Copy cost: copy_byte_ns * n. Remap cost: map_page_ns * ceil(n / page).
        // Equal when n = map_page_ns * n / (page * copy_byte_ns) ... solve per page:
        // copy of one page = page * copy_byte_ns vs map_page_ns.
        if page_size.saturating_mul(self.copy_byte_ns) >= self.map_page_ns {
            // Remapping wins from the first whole page.
            page_size
        } else {
            // Remapping never wins per page; crossover effectively infinite.
            u64::MAX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_uma() {
        assert_eq!(CostModel::default().topology, Topology::Uma);
    }

    #[test]
    fn disk_dwarfs_memory() {
        let m = CostModel::default();
        // A 4K disk read must cost orders of magnitude more than a 4K copy;
        // this gap is what the Mach file cache exploits (Section 9).
        assert!(m.disk_op_ns(4096) > 20 * m.copy_cost_ns(4096));
    }

    #[test]
    fn remap_beats_copy_for_pages() {
        let m = CostModel::default();
        // One 4K page: copy = 409_600 ns, remap = 10_000 ns.
        assert!(m.remap_cost_ns(1) < m.copy_cost_ns(4096));
        assert_eq!(m.analytic_cow_crossover_bytes(4096), 4096);
    }

    #[test]
    fn copy_cost_is_linear() {
        let m = CostModel::default();
        assert_eq!(m.copy_cost_ns(10) * 10, m.copy_cost_ns(100));
    }

    #[test]
    fn net_op_includes_fixed_latency() {
        let m = CostModel::norma();
        assert!(m.net_op_ns(0) >= 100_000);
        assert_eq!(m.net_op_ns(100) - m.net_op_ns(0), 100 * m.net_byte_ns);
    }

    #[test]
    fn topology_models_differ_in_remote_access() {
        let uma = CostModel::uma();
        let numa = CostModel::numa();
        assert!(numa.word_access_ns(MemoryKind::Remote) > uma.word_access_ns(MemoryKind::Remote));
    }

    #[test]
    fn handoff_is_cheaper_than_a_queued_message() {
        // The whole point of the RPC fast path: donating the sender's
        // thread to a waiting receiver must beat the full queue/wakeup
        // cycle, or the optimization charges more than it saves.
        let m = CostModel::default();
        assert!(m.handoff_ns < m.message_ns);
    }

    #[test]
    fn crossover_infinite_when_mapping_expensive() {
        let m = CostModel {
            map_page_ns: u64::MAX / 2,
            ..Default::default()
        };
        assert_eq!(m.analytic_cow_crossover_bytes(4096), u64::MAX);
    }
}
