//! The wall-clock airlock: the one module allowed to read real time.
//!
//! Everything the simulation *measures* must flow through [`SimClock`]
//! (`crates/sim/src/clock.rs`) so memory and IPC costs stay comparable
//! duals. But the workspace still runs on real OS threads, and real
//! threads occasionally need real time: a receive timeout must expire
//! even if no simulated work happens, the watchdog must poll while the
//! kernel is wedged, and tests must bound how long they wait for a
//! background thread. Those are *liveness* concerns, not measurements.
//!
//! This module exists so the two uses cannot blur. `machlint`'s
//! sim-time-purity lint (L2) forbids `Instant::now`, `SystemTime` and
//! `thread::sleep` everywhere except here; call sites that genuinely
//! need wall time say so explicitly by calling [`wall::now`](now),
//! [`wall::sleep`](sleep) or [`Deadline`], which makes every wall-clock
//! dependency in the tree greppable from one name.
//!
//! Never feed a value derived from this module into [`SimClock::charge`]
//! or a latency histogram: wall durations depend on host load and would
//! silently corrupt the paper's simulated figures.
//!
//! [`SimClock`]: crate::SimClock

use std::time::{Duration, Instant};

/// Reads the real monotonic clock.
///
/// For thread-liveness decisions only (timeouts, polling bounds); never
/// for simulated measurements.
pub fn now() -> Instant {
    Instant::now()
}

/// Blocks the current OS thread for `d` of real time.
///
/// Simulated components model delay by charging a [`SimClock`]
/// (`clock.charge(...)`) instead; sleep only to yield to a background
/// thread that does real work (pager threads, the watchdog, tests).
///
/// [`SimClock`]: crate::SimClock
pub fn sleep(d: Duration) {
    std::thread::sleep(d);
}

/// A real-time deadline for bounding blocking waits.
///
/// # Examples
///
/// ```
/// use machsim::wall::Deadline;
/// use std::time::Duration;
///
/// let d = Deadline::after(Duration::from_secs(5));
/// assert!(!d.expired());
/// assert!(d.remaining().is_some());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` of real time from now.
    pub fn after(d: Duration) -> Self {
        Self { at: now() + d }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        now() >= self.at
    }

    /// Whether the deadline had passed as of `now` — for sweeps that
    /// check many deadlines against one clock read.
    pub fn expired_by(&self, now: Instant) -> bool {
        now >= self.at
    }

    /// Real time left before the deadline, or `None` once expired.
    ///
    /// The `None` case doubles as the timeout signal in wait loops:
    /// `let Some(left) = deadline.remaining() else { return Err(Timeout) }`.
    pub fn remaining(&self) -> Option<Duration> {
        let t = now();
        if t >= self.at {
            None
        } else {
            Some(self.at - t)
        }
    }
}

/// Polls `done` every `interval` of real time until it returns `true` or
/// `timeout` elapses; returns whether the condition was observed.
///
/// The standard shape for tests awaiting a background thread ("the sync
/// eventually lands") without an unbounded spin.
pub fn poll_until(timeout: Duration, interval: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Deadline::after(timeout);
    loop {
        if done() {
            return true;
        }
        if deadline.expired() {
            return false;
        }
        sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expires() {
        let d = Deadline::after(Duration::from_millis(1));
        sleep(Duration::from_millis(5));
        assert!(d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn deadline_remaining_shrinks() {
        let d = Deadline::after(Duration::from_secs(60));
        let a = d.remaining().expect("fresh deadline has time left");
        sleep(Duration::from_millis(2));
        let b = d.remaining().expect("still well before the deadline");
        assert!(b <= a);
    }

    #[test]
    fn poll_until_sees_condition() {
        let mut calls = 0;
        let ok = poll_until(Duration::from_secs(5), Duration::from_millis(1), || {
            calls += 1;
            calls >= 3
        });
        assert!(ok);
        assert_eq!(calls, 3);
    }

    #[test]
    fn poll_until_times_out() {
        let ok = poll_until(Duration::from_millis(5), Duration::from_millis(1), || false);
        assert!(!ok);
    }
}
