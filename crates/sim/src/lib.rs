#![warn(missing_docs)]

//! Simulation substrate for the Mach duality reproduction.
//!
//! The paper evaluates Mach on 1987-era hardware: VAX multiprocessors, the
//! Encore MultiMax, the Sequent Balance, Ethernet-connected workstations and
//! real disks. None of that hardware is available, so every experiment in
//! this repository runs against a *simulated machine*: a virtual clock that
//! components charge costs to, a cost model capturing the paper's published
//! access-time ratios (Section 7), and a statistics registry that counts the
//! events the paper reports (I/O operations, messages, page faults).
//!
//! The substrate is deliberately passive: it never schedules anything. Real
//! OS threads provide concurrency; the simulation layer only accounts for
//! *how long things would have taken* and *how often they happened*, which
//! is exactly what Section 9's claims are about (2x cached compilation, 10x
//! fewer I/O operations).

pub mod clock;
pub mod cost;
pub mod export;
pub mod flight;
pub mod gauge;
pub mod lockdep;
pub mod machine;
pub mod rng;
pub mod span;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod wall;

pub use clock::SimClock;
pub use cost::CostModel;
pub use flight::{FlightRecorder, InFlightChain};
pub use gauge::{GaugeRegistry, GaugeSeries};
pub use machine::{Machine, SpanGuard};
pub use rng::SplitMix64;
pub use span::{ChainAttribution, CriticalPathReport, SpanRecord};
pub use stats::{Counter, HotCounters, StatsRegistry, StatsSnapshot};
pub use topology::{MemoryKind, Topology};
pub use trace::{
    CorrelationId, CorrelationScope, EventKind, Histogram, LatencyRegistry, SpanInfo, SpanScope,
    TraceBuffer, TraceEvent,
};
