//! L3 — counter-key literals: production call sites of the stats and
//! latency registries must name keys through the `stats::keys` /
//! `trace::keys` consts, never as string literals. Literal keys drift:
//! a typo silently creates a second counter and every dashboard keyed on
//! the const misses it.
//!
//! The check flags `.<method>("literal", …)` for the configured method
//! set in non-test code. Test code may use literals freely — tests often
//! probe the registry's behavior with scratch keys.

use crate::config::CounterKeysConfig;
use crate::lexer::Tok;
use crate::model::FileModel;
use crate::Finding;

/// Runs the lint over one file.
pub fn check(model: &FileModel, cfg: &CounterKeysConfig, findings: &mut Vec<Finding>) {
    let toks = &model.tokens;
    for i in 0..toks.len() {
        if model.is_test[i] || !toks[i].is_punct('.') {
            continue;
        }
        let Some(method) = toks.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if !cfg.methods.iter().any(|m| m == method) {
            continue;
        }
        if !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(Tok::Str(lit)) = toks.get(i + 3).map(|t| &t.tok) else {
            continue;
        };
        findings.push(Finding {
            file: model.path.clone(),
            line: toks[i + 3].line,
            lint: "counter-key",
            msg: format!(
                ".{method}(\"{lit}\") uses a string literal; \
                 name the key through a stats::keys / trace::keys const"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CounterKeysConfig;

    fn run(src: &str) -> Vec<Finding> {
        let cfg = CounterKeysConfig {
            methods: vec![
                "counter".into(),
                "incr".into(),
                "add".into(),
                "histogram".into(),
                "record".into(),
            ],
            keys_file: "k.rs".into(),
        };
        let model = FileModel::new("a.rs".into(), src);
        let mut out = Vec::new();
        check(&model, &cfg, &mut out);
        out
    }

    #[test]
    fn literal_key_fires() {
        let f = run("fn f(s: &Stats) {\n s.incr(\"vm.faults\");\n}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert!(f[0].msg.contains("vm.faults"));
    }

    #[test]
    fn const_key_is_clean() {
        let f = run("fn f(s: &Stats) { s.incr(keys::VM_FAULTS); s.add(keys::X, 2); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_may_use_literals() {
        let f = run("#[test]\nfn t() { s.incr(\"scratch\"); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unrelated_methods_with_string_args_are_fine() {
        let f = run("fn f() { m.insert(\"k\", v); x.expect(\"msg\"); }");
        assert!(f.is_empty(), "{f:?}");
    }
}
