//! L5 — trace coverage: a public entry point that charges the simulated
//! clock is doing work the paper's evaluation cares about, so it must be
//! observable — its body (or something it clearly delegates to in the
//! same file) has to emit a trace event or record a latency sample.
//!
//! Scoped to the configured fault/IPC entry-point files. A `pub fn`
//! outside test code whose body contains a charge call
//! (`.charge(…)` / `.charge_us(…)` / `.charge_ms(…)`) must also contain
//! one of the configured emitter identifiers (`trace_event`,
//! `trace_event_with`, `record`, `enter`, …) or carry a justified
//! `[[trace.allow]]` entry.

use crate::config::TraceConfig;
use crate::model::FileModel;
use crate::Finding;

/// Runs the lint over one file (already confirmed to be in scope).
pub fn check(model: &FileModel, cfg: &TraceConfig, findings: &mut Vec<Finding>) {
    let toks = &model.tokens;
    for f in &model.fns {
        let Some(start) = f.body_start else { continue };
        if !f.is_pub || model.is_test[start] {
            continue;
        }
        let end = f.body_end.min(toks.len());
        let mut charges = false;
        let mut emits = false;
        for i in start..end {
            if toks[i].is_punct('.')
                && toks
                    .get(i + 1)
                    .and_then(|t| t.ident())
                    .is_some_and(|m| cfg.charge_methods.iter().any(|c| c == m))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                charges = true;
            }
            if toks[i]
                .ident()
                .is_some_and(|id| cfg.emitters.iter().any(|e| e == id))
            {
                emits = true;
            }
        }
        if charges && !emits && !cfg.allowed(&model.path, &f.name) {
            findings.push(Finding {
                file: model.path.clone(),
                line: f.line,
                lint: "trace-cover",
                msg: format!(
                    "pub fn {} charges the sim clock but emits no trace event or \
                     latency sample; wire it to the observability layer or add a \
                     [[trace.allow]] entry with justification",
                    f.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FnAllow, TraceConfig};

    fn cfg(allow: Vec<FnAllow>) -> TraceConfig {
        TraceConfig {
            files: vec!["fault.rs".into()],
            span_files: vec![],
            charge_methods: vec!["charge".into(), "charge_us".into(), "charge_ms".into()],
            emitters: vec![
                "trace_event".into(),
                "trace_event_with".into(),
                "record".into(),
                "enter".into(),
            ],
            allow,
        }
    }

    fn run(src: &str, allow: Vec<FnAllow>) -> Vec<Finding> {
        let model = FileModel::new("fault.rs".into(), src);
        let mut out = Vec::new();
        check(&model, &cfg(allow), &mut out);
        out
    }

    #[test]
    fn charging_without_emitting_fires() {
        let f = run("pub fn fault(&self) { self.clock.charge(100); }", vec![]);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("pub fn fault"));
    }

    #[test]
    fn charging_with_trace_event_is_clean() {
        let f = run(
            "pub fn fault(&self) { self.clock.charge(100); trace_event(m, k); }",
            vec![],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn private_fns_are_out_of_scope() {
        let f = run("fn helper(&self) { self.clock.charge(100); }", vec![]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allowlist_exempts_with_reason() {
        let f = run(
            "pub fn fault(&self) { self.clock.charge(100); }",
            vec![FnAllow {
                file: "fault.rs".into(),
                function: "fault".into(),
                reason: "delegates to traced inner".into(),
            }],
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
