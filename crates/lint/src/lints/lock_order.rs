//! L1 — lock-order: every function that nests classified lock
//! acquisitions must take them in the declared hierarchy order.
//!
//! The analysis is a per-function scope simulation over the token stream.
//! An acquisition is any `.<field>.lock()` / `.<field>.read()` /
//! `.<field>.write()` where `<field>` is classified in `[lock.fields]`.
//! Guard liveness is approximated conservatively:
//!
//! - a guard bound by a statement-leading `let` lives to the end of the
//!   enclosing block (or an explicit `drop(name)`);
//! - an unbound (temporary) guard lives to the end of the statement —
//!   the `;` — or to the next `{`, which over-approximates Rust's real
//!   temporary-lifetime rules in `if`/`match` heads in the *safe*
//!   direction for a lint: a guard the simulator drops early can only
//!   suppress a finding the runtime lockdep witness would still catch.
//!
//! A finding fires when an acquisition's class ranks *before* a held
//! class (out of order), or ties it (same-class nesting, the deadlock
//! shape index-ordering protocols exist for) — unless the enclosing
//! function has a justified `[[lock.allow]]` entry.

use crate::config::LockConfig;
use crate::model::FileModel;
use crate::Finding;

/// One live guard in the simulation.
struct Guard {
    /// Binding name, if the guard was `let`-bound.
    name: Option<String>,
    /// Class name (interned in the config's hierarchy).
    class: String,
    /// Hierarchy rank.
    rank: usize,
    /// Whether the guard dies at end-of-statement.
    temp: bool,
    /// Block depth at which the guard was created.
    depth: usize,
}

/// Runs the lint over one file (already confirmed to be in scope).
pub fn check(model: &FileModel, cfg: &LockConfig, findings: &mut Vec<Finding>) {
    for f in &model.fns {
        let Some(start) = f.body_start else { continue };
        if model.is_test[start] {
            continue;
        }
        check_fn(model, cfg, f.name.as_str(), start, f.body_end, findings);
    }
}

/// Simulates one function body.
fn check_fn(
    model: &FileModel,
    cfg: &LockConfig,
    fn_name: &str,
    start: usize,
    end: usize,
    findings: &mut Vec<Finding>,
) {
    let toks = &model.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // Name of a statement-leading `let` binding awaiting its initializer.
    let mut pending_let: Option<String> = None;
    let mut at_stmt_start = true;

    let mut i = start;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            guards.retain(|g| !g.temp);
            at_stmt_start = true;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            guards.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            at_stmt_start = true;
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            guards.retain(|g| !g.temp);
            pending_let = None;
            at_stmt_start = true;
            i += 1;
            continue;
        }
        // Statement-leading `let [mut] name`.
        if at_stmt_start && t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            pending_let = toks.get(j).and_then(|t| t.ident()).map(str::to_string);
            at_stmt_start = false;
            i = j + 1;
            continue;
        }
        at_stmt_start = false;
        // drop(name) releases a named guard.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(name) = toks.get(i + 2).and_then(|t| t.ident()) {
                if let Some(pos) = guards.iter().rposition(|g| g.name.as_deref() == Some(name)) {
                    guards.remove(pos);
                }
            }
            i += 4;
            continue;
        }
        // Acquisition: `.<field>.{lock,read,write}()`.
        if let Some((class, after)) = match_acquisition(model, cfg, i) {
            let rank = cfg
                .rank(&class)
                .expect("config validation pinned fields to hierarchy classes");
            let line = toks[i].line;
            for held in &guards {
                let problem = if held.rank > rank {
                    Some(format!(
                        "'{}' (rank {}) acquired while '{}' (rank {}) is held; \
                         the hierarchy is {}",
                        class,
                        rank,
                        held.class,
                        held.rank,
                        cfg.hierarchy.join(" → ")
                    ))
                } else if held.rank == rank {
                    Some(format!(
                        "nested same-class acquisition of '{class}' needs a \
                         [[lock.allow]] entry documenting its ordering protocol"
                    ))
                } else {
                    None
                };
                if let Some(msg) = problem {
                    if !cfg.allowed(&model.path, fn_name) {
                        findings.push(Finding {
                            file: model.path.clone(),
                            line,
                            lint: "lock-order",
                            msg: format!("in fn {fn_name}: {msg}"),
                        });
                    }
                }
            }
            // `let g = x.lock();` binds; `x.lock().foo()` and bare
            // `x.lock()` are temporaries.
            let projected = toks
                .get(after)
                .is_some_and(|t| t.is_punct('.') || t.is_punct('?'));
            let name = if projected { None } else { pending_let.take() };
            let temp = name.is_none();
            guards.push(Guard {
                name,
                class,
                rank,
                temp,
                depth,
            });
            i = after;
            continue;
        }
        i += 1;
    }
}

/// Matches `.<field>.{lock,read,write}()` starting at token `i` (the
/// first `.`). Returns the class and the index after the closing paren.
fn match_acquisition(model: &FileModel, cfg: &LockConfig, i: usize) -> Option<(String, usize)> {
    let toks = &model.tokens;
    if !toks.get(i)?.is_punct('.') {
        return None;
    }
    let field = toks.get(i + 1)?.ident()?;
    let class = cfg.fields.get(field)?;
    if !toks.get(i + 2)?.is_punct('.') {
        return None;
    }
    let method = toks.get(i + 3)?.ident()?;
    if !matches!(method, "lock" | "read" | "write") {
        return None;
    }
    if !toks.get(i + 4)?.is_punct('(') || !toks.get(i + 5)?.is_punct(')') {
        return None;
    }
    Some((class.clone(), i + 6))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, LockConfig};
    use crate::toml;

    fn cfg() -> LockConfig {
        let doc = toml::parse(
            r#"
[scan]
include = ["crates"]
[lock]
hierarchy = ["shard", "frame-meta", "frame-data", "queues", "numa-pool"]
files = ["vm.rs"]
[lock.fields]
state = "shard"
meta = "frame-meta"
data = "frame-data"
queues = "queues"
[counter_keys]
methods = ["incr"]
keys_file = "k.rs"
[trace]
"#,
        )
        .unwrap();
        Config::from_doc(&doc).unwrap().lock
    }

    fn run(src: &str) -> Vec<Finding> {
        let model = FileModel::new("vm.rs".into(), src);
        let mut out = Vec::new();
        check(&model, &cfg(), &mut out);
        out
    }

    #[test]
    fn in_order_nesting_is_clean() {
        let f =
            run("fn f(&self) { let st = self.shard.state.lock(); let q = self.queues.lock(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn out_of_order_nesting_fires() {
        let f = run(
            "fn f(&self) {\n let q = self.queues.lock();\n let st = self.shard.state.lock();\n}",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].msg.contains("'shard'"), "{}", f[0].msg);
    }

    #[test]
    fn drop_releases_the_guard() {
        let f = run(
            "fn f(&self) { let q = self.queues.lock(); drop(q); let st = self.shard.state.lock(); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn block_scope_releases_guards() {
        let f = run(
            "fn f(&self) { { let q = self.queues.lock(); } let st = self.shard.state.lock(); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn temporaries_die_at_statement_end() {
        let f =
            run("fn f(&self) { self.queues.lock().push(1); let st = self.shard.state.lock(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn same_class_nesting_requires_allowlist() {
        let f =
            run("fn f(&self) { let a = self.left.state.lock(); let b = self.right.state.lock(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("same-class"), "{}", f[0].msg);
    }

    #[test]
    fn test_code_is_skipped() {
        let f = run(
            "#[test]\nfn t() { let q = self.queues.lock(); let st = self.shard.state.lock(); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
