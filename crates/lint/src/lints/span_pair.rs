//! L6 — span pairing: in files instrumented with structured phase spans,
//! the set of phase names opened (`span_open` / `span_open_under` /
//! `span_open_with`) must equal the set closed (`span_close` /
//! `span_close_with`) within the same file. An open with no close leaks
//! unclosed spans into every critical-path report; a close with no open
//! is a stale call site for a phase that no longer exists. The close
//! methods take the phase-name literal precisely so this check can be
//! static.
//!
//! `span_enter` (the RAII guard) is exempt by construction: its guard
//! closes the span with the same literal, so it cannot unpair.
//!
//! The check is per-file on purpose. Cross-host spans (`net.hop`) open on
//! one machine's ring and close on another's, but both call sites live in
//! the same function — the invariant the profiler needs is that every
//! phase name has both ends *somewhere the lint can see them together*.

use crate::config::TraceConfig;
use crate::lexer::Tok;
use crate::model::FileModel;
use crate::Finding;
use std::collections::BTreeMap;

const OPENERS: [&str; 3] = ["span_open", "span_open_under", "span_open_with"];
const CLOSERS: [&str; 2] = ["span_close", "span_close_with"];

/// The phase-name literal of a `method("name", …)` call at token `i`,
/// tolerating a newline between `(` and the literal.
fn phase_arg(model: &FileModel, i: usize) -> Option<(String, u32)> {
    let toks = &model.tokens;
    if !toks.get(i + 1)?.is_punct('(') {
        return None;
    }
    match &toks.get(i + 2)?.tok {
        Tok::Str(name) => Some((name.clone(), toks[i].line)),
        _ => None,
    }
}

/// Runs the lint over one file (already confirmed to be in scope).
pub fn check(model: &FileModel, _cfg: &TraceConfig, findings: &mut Vec<Finding>) {
    let mut opened: BTreeMap<String, u32> = BTreeMap::new();
    let mut closed: BTreeMap<String, u32> = BTreeMap::new();
    for (i, t) in model.tokens.iter().enumerate() {
        if model.is_test[i] {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        let bucket = if OPENERS.contains(&id) {
            &mut opened
        } else if CLOSERS.contains(&id) {
            &mut closed
        } else {
            continue;
        };
        if let Some((name, line)) = phase_arg(model, i) {
            bucket.entry(name).or_insert(line);
        }
    }
    for (name, &line) in &opened {
        if !closed.contains_key(name) {
            findings.push(Finding {
                file: model.path.clone(),
                line,
                lint: "span-pair",
                msg: format!(
                    "span \"{name}\" is opened here but never closed in this \
                     file; every phase span must pair its open and close (or \
                     use the span_enter RAII guard)"
                ),
            });
        }
    }
    for (name, &line) in &closed {
        if !opened.contains_key(name) {
            findings.push(Finding {
                file: model.path.clone(),
                line,
                lint: "span-pair",
                msg: format!(
                    "span \"{name}\" is closed here but never opened in this \
                     file; stale close for a phase that no longer exists?"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceConfig;

    fn cfg() -> TraceConfig {
        TraceConfig {
            files: vec![],
            span_files: vec!["fault.rs".into()],
            charge_methods: vec!["charge".into()],
            emitters: vec!["trace_event".into()],
            allow: vec![],
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        let model = FileModel::new("fault.rs".into(), src);
        let mut out = Vec::new();
        check(&model, &cfg(), &mut out);
        out
    }

    #[test]
    fn paired_open_close_is_clean() {
        let f = run(r#"fn f(m: &Machine) {
                let s = m.span_open("fault.submit");
                m.span_close("fault.submit", s);
            }"#);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn multiline_call_and_variant_methods_pair() {
        let f = run(r#"fn f(m: &Machine) {
                let s = m.span_open_with(
                    "ipc.queued",
                    parent,
                    cid,
                );
                m.span_close_with("ipc.queued", s, cid);
            }"#);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unclosed_open_fires() {
        let f = run(r#"fn f(m: &Machine) { let _s = m.span_open("fault.parked"); }"#);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("never closed"), "{}", f[0].msg);
    }

    #[test]
    fn stale_close_fires() {
        let f = run(r#"fn f(m: &Machine) { m.span_close("gone.phase", s); }"#);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("never opened"), "{}", f[0].msg);
    }

    #[test]
    fn span_enter_guard_is_exempt() {
        let f = run(r#"fn f(m: &Machine) { let _g = m.span_enter("fault.fast"); }"#);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let f = run(r#"#[cfg(test)]
            mod tests {
                fn f(m: &Machine) { let _s = m.span_open("only.in.test"); }
            }"#);
        assert!(f.is_empty(), "{f:?}");
    }
}
