//! L9 — unchecked send: a `let _ = …` that discards the `Result` of a
//! message-delivery call (`send`, `send_many`, `notify`, …) must carry a
//! justified `[[send.allow]]` entry. The compiler's `#[must_use]` already
//! forbids silently dropping these Results; `let _ =` is the sanctioned
//! override, and this lint makes the override itself reviewable — every
//! swallowed delivery failure is either argued sound in the allowlist
//! (reply ports may die first; that is the client's problem) or it is a
//! finding.
//!
//! Only non-test code is checked: tests discard sends freely while
//! arranging scenarios.

use crate::config::SendConfig;
use crate::model::FileModel;
use crate::Finding;

/// Runs the lint over one file.
pub fn check(model: &FileModel, cfg: &SendConfig, findings: &mut Vec<Finding>) {
    if cfg.methods.is_empty() {
        return;
    }
    let toks = &model.tokens;
    let mut i = 0;
    while i < toks.len() {
        if model.is_test[i]
            || !toks[i].is_ident("let")
            || !toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
            || !toks.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            i += 1;
            continue;
        }
        // Scan the initializer to its terminating `;`, looking for a
        // `.method(` of one of the configured delivery calls.
        let mut j = i + 3;
        let mut depth = 0usize;
        let mut hit: Option<(u32, String)> = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct(';') && depth == 0 {
                break;
            } else if hit.is_none()
                && toks[j - 1].is_punct('.')
                && toks.get(j + 1).is_some_and(|x| x.is_punct('('))
            {
                if let Some(m) = t.ident().filter(|m| cfg.methods.iter().any(|c| c == m)) {
                    hit = Some((t.line, m.to_string()));
                }
            }
            j += 1;
        }
        if let Some((line, method)) = hit {
            let function = model
                .enclosing_fn(i)
                .map(|f| f.name.clone())
                .unwrap_or_default();
            if !cfg.allowed(&model.path, &function) {
                findings.push(Finding {
                    file: model.path.clone(),
                    line,
                    lint: "unchecked-send",
                    msg: format!(
                        "`let _ =` discards the Result of `{method}` in \
                         `{function}` — add a [[send.allow]] entry saying why \
                         this delivery failure is ignorable, or handle it"
                    ),
                });
            }
        }
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FnAllow, SendConfig};

    fn run(src: &str) -> Vec<Finding> {
        let cfg = SendConfig {
            methods: vec!["send".into(), "send_many".into(), "notify".into()],
            allow: vec![FnAllow {
                file: "a.rs".into(),
                function: "reply_to".into(),
                reason: "reply ports may die first".into(),
            }],
        };
        let model = FileModel::new("a.rs".into(), src);
        let mut out = Vec::new();
        check(&model, &cfg, &mut out);
        out
    }

    #[test]
    fn discarded_send_fires_with_line() {
        let f = run("fn f() {\n let _ = port.send(msg);\n}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert!(
            f[0].msg.contains("`send`") && f[0].msg.contains("`f`"),
            "{f:?}"
        );
    }

    #[test]
    fn handled_send_is_quiet() {
        let f = run("fn f() { port.send(msg)?; let ok = port.send(m2).is_ok(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allowlisted_function_is_quiet() {
        let f = run("fn reply_to() { let _ = reply.send(msg); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn discarded_notify_on_chained_receiver_fires() {
        let f = run("fn f() { let _ = self.kernel.port(id).notify(EVENT); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("`notify`"), "{f:?}");
    }

    #[test]
    fn let_underscore_of_unrelated_calls_is_quiet() {
        let f = run("fn f() { let _ = map.remove(&k); let _ = guard.sender(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn named_bindings_are_not_discards() {
        let f = run("fn f() { let _res = port.send(msg); drop(_res); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let f = run("#[test]\nfn t() { let _ = port.send(msg); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn send_inside_closure_argument_still_fires() {
        let f = run("fn f() { let _ = with(|p| p.send(m)); }");
        assert_eq!(f.len(), 1);
    }
}
