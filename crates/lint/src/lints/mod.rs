//! The nine lint passes. Each is a pure function from a [`FileModel`]
//! (plus its slice of the config) to findings; `crate::run` owns file
//! scoping and sequencing.
//!
//! [`FileModel`]: crate::model::FileModel

pub mod atomics;
pub mod condvar_wait;
pub mod counter_keys;
pub mod lock_order;
pub mod panic_budget;
pub mod sim_time;
pub mod span_pair;
pub mod trace_cover;
pub mod unchecked_send;
