//! L7 — atomic-ordering audit: every `Ordering::` literal in production
//! code must be covered by a justified `[[atomics.allow]]` entry naming
//! the file and the orderings it may use. The point is not that weak
//! orderings are wrong — it is that every choice of ordering is a claim
//! about the protocol, and claims belong in a reviewed allowlist next to
//! a written reason, where `machmc` models can be pointed at them.
//!
//! Scope:
//!
//! - `[atomics] exempt` path prefixes (the simulator's airlock and the
//!   model checker's shims) are skipped entirely.
//! - Test code is skipped: tests may use `SeqCst` freely to pin a
//!   scenario without arguing about fences.
//! - `std::cmp::Ordering` never triggers — only the five atomic
//!   ordering names are matched.
//! - Brace-importing orderings (`use …::Ordering::{Acquire, …}`) is
//!   itself a finding: bare `Acquire` at a call site is invisible to
//!   this audit, so the import style is part of the contract.

use crate::config::AtomicsConfig;
use crate::model::FileModel;
use crate::Finding;

/// The five memory orderings, the only valid `orderings` entries.
pub const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Runs the lint over one file.
pub fn check(model: &FileModel, cfg: &AtomicsConfig, findings: &mut Vec<Finding>) {
    if cfg.exempt(&model.path) {
        return;
    }
    let toks = &model.tokens;
    for i in 0..toks.len() {
        if model.is_test[i]
            || !toks[i].is_ident("Ordering")
            || !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            || !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            continue;
        }
        let Some(next) = toks.get(i + 3) else {
            continue;
        };
        if next.is_punct('{') {
            findings.push(Finding {
                file: model.path.clone(),
                line: next.line,
                lint: "atomic-ordering",
                msg: "brace-importing orderings hides the use sites from the \
                      audit; spell `Ordering::<ord>` at each call site"
                    .into(),
            });
            continue;
        }
        let Some(ord) = next.ident().filter(|s| ORDERINGS.contains(s)) else {
            // `std::cmp::Ordering::Less` and friends.
            continue;
        };
        if !cfg.allowed(&model.path, ord) {
            findings.push(Finding {
                file: model.path.clone(),
                line: next.line,
                lint: "atomic-ordering",
                msg: format!(
                    "Ordering::{ord} is not covered by a [[atomics.allow]] \
                     entry for this file — add one with the protocol argument \
                     that justifies it"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AtomicsConfig, OrderingAllow};

    fn cfg() -> AtomicsConfig {
        AtomicsConfig {
            exempt: vec!["crates/sim".into(), "crates/mc".into()],
            allow: vec![OrderingAllow {
                file: "crates/ipc/src/port.rs".into(),
                orderings: vec!["Acquire".into(), "Relaxed".into()],
                reason: "depth/waiter protocol".into(),
            }],
        }
    }

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let model = FileModel::new(path.into(), src);
        let mut out = Vec::new();
        check(&model, &cfg(), &mut out);
        out
    }

    #[test]
    fn unlisted_ordering_fires_with_line() {
        let f = run(
            "crates/ipc/src/port.rs",
            "fn f(x: &AtomicUsize) {\n x.load(Ordering::SeqCst);\n}",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert!(f[0].msg.contains("SeqCst"), "{f:?}");
    }

    #[test]
    fn listed_orderings_are_quiet() {
        let f = run(
            "crates/ipc/src/port.rs",
            "fn f(x: &AtomicUsize) { x.fetch_add(1, Ordering::Relaxed); x.load(Ordering::Acquire); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unlisted_file_fires_on_any_ordering() {
        let f = run(
            "crates/vm/src/new.rs",
            "fn f() { a.load(Ordering::Relaxed); }",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn exempt_prefixes_are_skipped() {
        let f = run(
            "crates/mc/src/sync.rs",
            "fn f() { a.load(Ordering::SeqCst); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic() {
        let f = run(
            "crates/vm/src/new.rs",
            "fn f() { if c == Ordering::Less { x(); } m.cmp(&n) == Ordering::Equal; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_may_use_any_ordering() {
        let f = run(
            "crates/vm/src/new.rs",
            "#[cfg(test)]\nmod tests {\n fn t() { a.store(1, Ordering::SeqCst); }\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn brace_imports_are_flagged() {
        let f = run(
            "crates/vm/src/new.rs",
            "use std::sync::atomic::Ordering::{Acquire, Release};\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("brace-importing"), "{f:?}");
    }
}
