//! L2 — sim-time purity: the kernel's notion of time is the simulated
//! clock (`SimClock`); wall-clock reads and real sleeps are allowed only
//! in the designated airlock (`machsim::wall`) and other files with a
//! justified `[[sim_time.allow]]` entry.
//!
//! Forbidden patterns, matched on the token stream (so comments and
//! string literals never trigger):
//!
//! - `Instant::now(…)` — wall-clock read
//! - `SystemTime` — any use; there is no legitimate simulated use
//! - `thread::sleep(…)` — real-time delay (the `wall::sleep` helper and
//!   condvar timeouts are the sanctioned forms)

use crate::config::SimTimeConfig;
use crate::model::FileModel;
use crate::Finding;

/// Runs the lint over one file.
pub fn check(model: &FileModel, cfg: &SimTimeConfig, findings: &mut Vec<Finding>) {
    if cfg.allowed(&model.path) {
        return;
    }
    let toks = &model.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let hit = if path_call(model, i, "Instant", "now") {
            Some("Instant::now() reads the wall clock")
        } else if tok.is_ident("SystemTime") {
            Some("SystemTime has no simulated counterpart")
        } else if path_call(model, i, "thread", "sleep") {
            Some("thread::sleep delays in real time")
        } else {
            None
        };
        if let Some(what) = hit {
            findings.push(Finding {
                file: model.path.clone(),
                line: tok.line,
                lint: "sim-time",
                msg: format!(
                    "{what}; use machsim::wall (or SimClock charging) — \
                     or add a [[sim_time.allow]] entry with justification"
                ),
            });
        }
    }
}

/// Matches `first::second(` at token `i`.
fn path_call(model: &FileModel, i: usize, first: &str, second: &str) -> bool {
    let t = &model.tokens;
    t[i].is_ident(first)
        && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
        && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
        && t.get(i + 3).is_some_and(|x| x.is_ident(second))
        && t.get(i + 4).is_some_and(|x| x.is_punct('('))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FileAllow, SimTimeConfig};

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let cfg = SimTimeConfig {
            allow: vec![FileAllow {
                file: "crates/sim/src/wall.rs".into(),
                reason: "the airlock".into(),
            }],
        };
        let model = FileModel::new(path.into(), src);
        let mut out = Vec::new();
        check(&model, &cfg, &mut out);
        out
    }

    #[test]
    fn instant_now_fires_with_line() {
        let f = run("a.rs", "fn f() {\n let t = Instant::now();\n}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].lint, "sim-time");
    }

    #[test]
    fn qualified_paths_fire_too() {
        let f = run("a.rs", "fn f() { std::thread::sleep(d); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("thread::sleep"));
    }

    #[test]
    fn instant_as_a_type_is_fine() {
        // Storing or comparing Instants handed out by the airlock is
        // legitimate; only *reading* the clock is gated.
        let f = run("a.rs", "fn f(t: Instant) -> Instant { t }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn system_time_fires_on_any_use() {
        let f = run("a.rs", "fn f() { let t: SystemTime = x; }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let f = run(
            "a.rs",
            "// Instant::now()\nfn f() { log(\"thread::sleep(d)\"); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn the_airlock_is_allowed() {
        let f = run(
            "crates/sim/src/wall.rs",
            "pub fn now() -> Instant { Instant::now() }",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
