//! L8 — condvar wait-loop: every `.wait(…)` / `.wait_for(…)` in the
//! configured files must sit inside a `while`/`loop`/`for` body so the
//! predicate is re-checked after the wakeup. A wait guarded only by an
//! `if` turns a spurious wakeup — or a wakeup stolen by another waiter —
//! into silent predicate violation; `machmc`'s condvar deliberately has
//! no spurious wakeups so its models catch *lost* wakeups, which makes
//! this lint the static half of the pair: the dynamic checker proves
//! notify reaches a waiter, the lint proves the waiter re-checks.
//!
//! Detection is lexical: a wait call is "in a loop" when any enclosing
//! block between it and its function's body brace was opened by a loop
//! keyword. Functions whose *caller* owns the loop (a `run_once` step
//! body) carry a justified `[[condvar.allow]]` entry instead.

use crate::config::CondvarConfig;
use crate::model::FileModel;
use crate::Finding;

/// The blocking-wait method names checked.
const WAITS: &[&str] = &["wait", "wait_for"];

/// Runs the lint over one file.
pub fn check(model: &FileModel, cfg: &CondvarConfig, findings: &mut Vec<Finding>) {
    let toks = &model.tokens;
    for i in 0..toks.len() {
        if model.is_test[i] {
            continue;
        }
        let Some(name) = toks[i].ident().filter(|s| WAITS.contains(s)) else {
            continue;
        };
        if i == 0 || !toks[i - 1].is_punct('.') || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let Some(f) = model.enclosing_fn(i) else {
            continue;
        };
        let Some(body) = f.body_start else {
            continue;
        };
        if cfg.allowed(&model.path, &f.name) || in_loop(model, body, i) {
            continue;
        }
        findings.push(Finding {
            file: model.path.clone(),
            line: toks[i].line,
            lint: "condvar-wait",
            msg: format!(
                "`.{name}()` in `{}` is not inside a while/loop re-check — a \
                 spurious or stolen wakeup returns with the predicate still \
                 false; loop on the predicate or add a [[condvar.allow]] \
                 entry naming the caller that owns the loop",
                f.name
            ),
        });
    }
}

/// Whether any block enclosing token `i` (inside the function body that
/// opens at token `body`) was opened by a loop keyword. Braces inside
/// parens/brackets (struct literals in arguments, `matches!` patterns)
/// are not blocks and are ignored.
fn in_loop(model: &FileModel, body: usize, i: usize) -> bool {
    let toks = &model.tokens;
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_loop = false;
    let mut grouping = 0usize;
    for t in &toks[body + 1..i] {
        if t.is_punct('(') || t.is_punct('[') {
            grouping += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            grouping = grouping.saturating_sub(1);
        } else if grouping > 0 {
            continue;
        } else if t.is_punct('{') {
            stack.push(pending_loop);
            pending_loop = false;
        } else if t.is_punct('}') {
            stack.pop();
        } else if t.is_ident("while") || t.is_ident("loop") || t.is_ident("for") {
            pending_loop = true;
        }
    }
    stack.iter().any(|&l| l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CondvarConfig, FnAllow};

    fn run(src: &str) -> Vec<Finding> {
        let cfg = CondvarConfig {
            files: vec!["a.rs".into()],
            allow: vec![FnAllow {
                file: "a.rs".into(),
                function: "step".into(),
                reason: "caller owns the loop".into(),
            }],
        };
        let model = FileModel::new("a.rs".into(), src);
        let mut out = Vec::new();
        check(&model, &cfg, &mut out);
        out
    }

    #[test]
    fn wait_under_if_fires_with_line() {
        let f = run("fn f() {\n if empty {\n  g = cv.wait(g);\n }\n}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].msg.contains("`f`"), "{f:?}");
    }

    #[test]
    fn wait_in_while_is_quiet() {
        let f = run("fn f() { while empty { g = cv.wait(g); } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wait_in_match_arm_inside_loop_is_quiet() {
        // port.rs's dequeue shape: the re-check loop owns a match.
        let f =
            run("fn f() { loop { match s { Empty => { g = cv.wait_for(g, d); } _ => break, } } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wait_for_under_if_fires() {
        let f = run("fn f() { if may_sleep { cv.wait_for(g, d); } }");
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("wait_for"), "{f:?}");
    }

    #[test]
    fn allowlisted_step_function_is_quiet() {
        let f = run("fn step() { if may_sleep { cv.wait_for(g, d); } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn braces_inside_call_arguments_are_not_blocks() {
        // The struct literal's `{}` inside the condition must not eat the
        // loop keyword's pending flag.
        let f = run("fn f() { while probe(Q { id: 0 }) { g = cv.wait(g); } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn non_method_wait_idents_are_ignored() {
        let f = run("fn f() { wait(); x.await_done(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let f = run("#[cfg(test)]\nmod t {\n fn t() { if x { cv.wait(g); } }\n}");
        assert!(f.is_empty(), "{f:?}");
    }
}
