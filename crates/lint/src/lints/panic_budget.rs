//! L4 — panic-budget ratchet: `.unwrap()` counts per crate may only go
//! down. The committed budget lives in `lint-baseline.toml`; exceeding
//! it is an error, and dropping below it prints a reminder to ratchet
//! the baseline down (`machlint --workspace --update-baseline`) so the
//! improvement is locked in.
//!
//! Counts include test code deliberately: a panicking test helper hides
//! the real failure just as effectively as a panicking fault handler,
//! and `expect("invariant: …")` documents intent in both. The sanctioned
//! escape is therefore conversion, not exclusion.

use crate::config::Baseline;
use crate::model::FileModel;
use crate::Finding;
use std::collections::BTreeMap;

/// Counts `.unwrap()` calls per crate key across `models`.
///
/// The crate key is `crates/<name>` for files under `crates/`, and
/// `root` for the workspace's own `src/`, `tests/`, and `examples/`.
pub fn count(models: &[FileModel]) -> BTreeMap<String, i64> {
    let mut counts: BTreeMap<String, i64> = BTreeMap::new();
    for m in models {
        let key = crate_key(&m.path);
        let n = count_file(m);
        *counts.entry(key).or_insert(0) += n;
    }
    counts
}

/// Compares observed counts to the committed baseline.
pub fn check(
    counts: &BTreeMap<String, i64>,
    baseline: &Baseline,
    findings: &mut Vec<Finding>,
    notes: &mut Vec<String>,
) {
    for (key, &n) in counts {
        let budget = *baseline.get(key).unwrap_or(&0);
        if n > budget {
            findings.push(Finding {
                file: "lint-baseline.toml".into(),
                line: 1,
                lint: "panic-budget",
                msg: format!(
                    "{key} has {n} unwrap() calls, budget is {budget}; convert the new \
                     ones to typed errors or expect(\"invariant: …\")"
                ),
            });
        } else if n < budget {
            notes.push(format!(
                "panic-budget: {key} is below budget ({n} < {budget}); run \
                 `machlint --workspace --update-baseline` to ratchet down"
            ));
        }
    }
    // A baseline entry for a crate that no longer exists (or reached 0
    // unwraps) is stale budget someone could spend later.
    for key in baseline.keys() {
        if !counts.contains_key(key) {
            notes.push(format!(
                "panic-budget: baseline entry `{key}` matches no scanned crate; \
                 ratchet it out with --update-baseline"
            ));
        }
    }
}

/// The crate key a file's unwraps are charged to.
pub fn crate_key(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return format!("crates/{name}");
        }
    }
    "root".to_string()
}

/// Counts `.unwrap()` in one file.
fn count_file(m: &FileModel) -> i64 {
    let t = &m.tokens;
    let mut n = 0;
    for i in 0..t.len() {
        if t[i].is_punct('.')
            && t.get(i + 1).is_some_and(|x| x.is_ident("unwrap"))
            && t.get(i + 2).is_some_and(|x| x.is_punct('('))
            && t.get(i + 3).is_some_and(|x| x.is_punct(')'))
        {
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_group_by_crate() {
        let models = vec![
            FileModel::new(
                "crates/vm/src/map.rs".into(),
                "fn f() { x.unwrap(); y.unwrap(); }",
            ),
            FileModel::new("crates/vm/src/fault.rs".into(), "fn f() { x.unwrap(); }"),
            FileModel::new("tests/stress.rs".into(), "fn f() { x.unwrap(); }"),
        ];
        let c = count(&models);
        assert_eq!(c["crates/vm"], 3);
        assert_eq!(c["root"], 1);
    }

    #[test]
    fn expect_and_unwrap_or_are_not_counted() {
        let m = FileModel::new(
            "a.rs".into(),
            "fn f() { x.expect(\"invariant: held\"); y.unwrap_or(0); z.unwrap_or_default(); }",
        );
        assert_eq!(count_file(&m), 0);
    }

    #[test]
    fn over_budget_errors_under_budget_notes() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/vm".to_string(), 10i64);
        counts.insert("root".to_string(), 2i64);
        let mut baseline = Baseline::new();
        baseline.insert("crates/vm".into(), 8);
        baseline.insert("root".into(), 5);
        let mut findings = Vec::new();
        let mut notes = Vec::new();
        check(&counts, &baseline, &mut findings, &mut notes);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].msg.contains("crates/vm has 10"));
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("root is below budget"));
    }

    #[test]
    fn missing_baseline_entry_means_zero_budget() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/new".to_string(), 1i64);
        let mut findings = Vec::new();
        let mut notes = Vec::new();
        check(&counts, &Baseline::new(), &mut findings, &mut notes);
        assert_eq!(findings.len(), 1);
    }
}
