//! machlint — workspace static analysis for the kernel's concurrency and
//! simulation invariants.
//!
//! The simulated kernel has invariants the compiler can't see:
//!
//! - **L1 lock-order** — the resident-memory fault path must take its
//!   locks in the declared hierarchy order (shard → frame-meta →
//!   frame-data → queues → numa-pool); see `machvm::lockdep` for the
//!   runtime half of this check.
//! - **L2 sim-time** — simulation results must not depend on the host's
//!   wall clock; real-time reads live only in the `machsim::wall`
//!   airlock.
//! - **L3 counter-key** — stats/latency registry keys come from the
//!   `keys::` const modules, never string literals.
//! - **L4 panic-budget** — per-crate `unwrap()` counts ratchet downward
//!   against `lint-baseline.toml`.
//! - **L5 trace-cover** — public entry points that charge the simulated
//!   clock must emit trace events.
//! - **L6 span-pair** — files instrumented with phase spans must open
//!   and close the same set of span-name literals, so no phase leaks
//!   unclosed spans into critical-path reports.
//! - **L7 atomic-ordering** — every `Ordering::` literal outside the
//!   simulator/model-checker airlocks must appear in a justified
//!   `[[atomics.allow]]` entry; the ordering choice is a protocol claim
//!   and claims get written down.
//! - **L8 condvar-wait** — `.wait`/`.wait_for` in the protocol files
//!   must sit inside a `while`/`loop` predicate re-check, never a bare
//!   `if` (the static half of what `machmc`'s lost-wakeup models check
//!   dynamically).
//! - **L9 unchecked-send** — `let _ =` discards of delivery Results
//!   (`send`, `send_many`, `notify`) carry a justified `[[send.allow]]`
//!   entry or they are findings.
//!
//! Configuration lives in `machlint.toml` at the workspace root; every
//! allowlist bypass carries a written justification. `scripts/check.sh`
//! and CI run `cargo run -q -p machlint -- --workspace` as a hard gate.

pub mod config;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod toml;

use config::{baseline_from_doc, Config};
use model::FileModel;
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint violation, with a clickable `file:line` span.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The lint's short name (`lock-order`, `sim-time`, …).
    pub lint: &'static str,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.msg
        )
    }
}

/// The outcome of a full workspace run.
pub struct Report {
    /// Violations; non-empty means the gate fails.
    pub findings: Vec<Finding>,
    /// Informational messages (ratchet reminders, baseline updates).
    pub notes: Vec<String>,
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
}

/// Runs all nine lints over the workspace rooted at `root`.
///
/// With `update_baseline`, rewrites `lint-baseline.toml` to the observed
/// unwrap counts instead of reporting panic-budget findings.
pub fn run(root: &Path, update_baseline: bool) -> Result<Report, String> {
    let cfg_path = root.join("machlint.toml");
    let cfg_src =
        std::fs::read_to_string(&cfg_path).map_err(|e| format!("{}: {e}", cfg_path.display()))?;
    let cfg = Config::from_doc(&toml::parse(&cfg_src).map_err(|e| format!("machlint.toml: {e}"))?)?;

    let baseline_path = root.join("lint-baseline.toml");
    let baseline_src = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
    let baseline = baseline_from_doc(
        &toml::parse(&baseline_src).map_err(|e| format!("lint-baseline.toml: {e}"))?,
    )?;

    let files = collect_files(root, &cfg)?;
    let mut models = Vec::with_capacity(files.len());
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        models.push(FileModel::new(rel.clone(), &src));
    }

    let mut findings = Vec::new();
    let mut notes = Vec::new();
    for m in &models {
        if cfg.lock.files.iter().any(|f| f == &m.path) {
            lints::lock_order::check(m, &cfg.lock, &mut findings);
        }
        lints::sim_time::check(m, &cfg.sim_time, &mut findings);
        lints::counter_keys::check(m, &cfg.counter_keys, &mut findings);
        if cfg.trace.files.iter().any(|f| f == &m.path) {
            lints::trace_cover::check(m, &cfg.trace, &mut findings);
        }
        if cfg.trace.span_files.iter().any(|f| f == &m.path) {
            lints::span_pair::check(m, &cfg.trace, &mut findings);
        }
        lints::atomics::check(m, &cfg.atomics, &mut findings);
        if cfg.condvar.files.iter().any(|f| f == &m.path) {
            lints::condvar_wait::check(m, &cfg.condvar, &mut findings);
        }
        lints::unchecked_send::check(m, &cfg.send, &mut findings);
    }

    let counts = lints::panic_budget::count(&models);
    if update_baseline {
        let mut table = toml::Table::new();
        for (k, &n) in &counts {
            if n > 0 {
                table.insert(k.clone(), toml::Value::Int(n));
            }
        }
        let body = toml::write_table(&table);
        let text = format!(
            "# L4 panic-budget baseline: per-crate unwrap() budgets, tests included.\n\
             # Maintained by `machlint --workspace --update-baseline`; counts may\n\
             # only go down. A crate with no entry has a budget of zero.\n\
             [unwraps]\n{body}"
        );
        std::fs::write(&baseline_path, text)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        notes.push(format!(
            "panic-budget: baseline rewritten with current counts ({} crates)",
            counts.values().filter(|&&n| n > 0).count()
        ));
    } else {
        lints::panic_budget::check(&counts, &baseline, &mut findings, &mut notes);
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Report {
        findings,
        notes,
        files_scanned: models.len(),
    })
}

/// All `.rs` files under the configured include roots, minus excluded
/// prefixes, as sorted `/`-separated workspace-relative paths.
fn collect_files(root: &Path, cfg: &Config) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.is_dir() {
            walk(&dir, root, &cfg.exclude, &mut out)?;
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// Recursive directory walk (depth-first, name order).
fn walk(dir: &Path, root: &Path, exclude: &[String], out: &mut Vec<String>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if exclude
            .iter()
            .any(|ex| rel == *ex || rel.starts_with(&format!("{ex}/")))
        {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, exclude, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Extracts `pub const NAME: &str = "value";` pairs from a source file —
/// the shape of the `stats::keys` / `trace::keys` modules. Used by the
/// workspace regression test to assert machlint and `keys::ALL` agree on
/// the canonical key set.
pub fn extract_key_consts(src: &str) -> Vec<(String, String)> {
    let toks = lexer::lex(src);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("const") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                // Scan the type annotation up to `=`; only `str`-typed
                // consts with a literal initializer are keys.
                let mut j = i + 2;
                let mut is_str_type = false;
                while j < toks.len() && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
                    if toks[j].is_ident("str") {
                        is_str_type = true;
                    }
                    if toks[j].is_punct('[') {
                        // `&[&str]` — an array like keys::ALL, not a key.
                        is_str_type = false;
                        break;
                    }
                    j += 1;
                }
                if is_str_type && toks.get(j).is_some_and(|t| t.is_punct('=')) {
                    if let Some(lexer::Tok::Str(v)) = toks.get(j + 1).map(|t| &t.tok) {
                        out.push((name.to_string(), v.clone()));
                        i = j + 2;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_key_consts_and_skips_all_array() {
        let src = r#"
pub mod keys {
    pub const VM_FAULTS: &str = "vm.faults";
    pub const IPC_SENDS: &str = "ipc.sends";
    pub const ALL: &[&str] = &[VM_FAULTS, IPC_SENDS];
    pub const LIMIT: usize = 4;
}
"#;
        let keys = extract_key_consts(src);
        assert_eq!(
            keys,
            vec![
                ("VM_FAULTS".to_string(), "vm.faults".to_string()),
                ("IPC_SENDS".to_string(), "ipc.sends".to_string()),
            ]
        );
    }

    #[test]
    fn finding_display_is_clickable() {
        let f = Finding {
            file: "crates/vm/src/resident.rs".into(),
            line: 42,
            lint: "lock-order",
            msg: "boom".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/vm/src/resident.rs:42: [lock-order] boom"
        );
    }
}
