//! A lightly structured view of one source file: its token stream, which
//! tokens are test code, and the span of every function body.
//!
//! "Test code" is anything under an attribute whose tokens include the
//! identifier `test` and not `not` — which covers `#[test]`,
//! `#[cfg(test)] mod …`, and `#[cfg(test)] use …`, while leaving
//! `#[cfg(not(test))]` classified as production code.

use crate::lexer::{lex, Token};

/// One function's position in the token stream.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's `{`; `None` for bodyless declarations.
    pub body_start: Option<usize>,
    /// Token index one past the body's `}` (== `body_start` token's match).
    pub body_end: usize,
    /// Whether the function is `pub` (any visibility restriction counts).
    pub is_pub: bool,
}

/// A lexed file plus structural annotations.
pub struct FileModel {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Per-token flag: inside a test item.
    pub is_test: Vec<bool>,
    /// Every `fn` item (including nested ones), in source order.
    pub fns: Vec<FnSpan>,
}

impl FileModel {
    /// Lexes and annotates `src`.
    pub fn new(path: String, src: &str) -> FileModel {
        let tokens = lex(src);
        let is_test = mark_tests(&tokens);
        let fns = find_fns(&tokens);
        FileModel {
            path,
            tokens,
            is_test,
            fns,
        }
    }

    /// The innermost function containing token index `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| match f.body_start {
                Some(s) => s <= i && i < f.body_end,
                None => false,
            })
            .min_by_key(|f| f.body_end - f.body_start.unwrap_or(0))
    }
}

/// Flags every token covered by a test-ish attribute's item.
fn mark_tests(tokens: &[Token]) -> Vec<bool> {
    let mut test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Inner attributes (`#![…]`) configure the enclosing item; none of
        // the test markers use them, so skip.
        if j < tokens.len() && tokens[j].is_punct('!') {
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct('[') {
            i += 1;
            continue;
        }
        // Collect the attribute body up to the matching `]`.
        let mut depth = 0usize;
        let mut has_test = false;
        let mut has_not = false;
        let mut k = j;
        while k < tokens.len() {
            if tokens[k].is_punct('[') {
                depth += 1;
            } else if tokens[k].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if tokens[k].is_ident("test") {
                has_test = true;
            } else if tokens[k].is_ident("not") {
                has_not = true;
            }
            k += 1;
        }
        if !has_test || has_not {
            i = k + 1;
            continue;
        }
        // Mark from the attribute through the item it decorates: to the
        // matching `}` of the first `{`, or to a `;` for block-less items.
        let mut m = k + 1;
        let mut brace = 0usize;
        let mut entered = false;
        while m < tokens.len() {
            if tokens[m].is_punct('{') {
                brace += 1;
                entered = true;
            } else if tokens[m].is_punct('}') {
                brace = brace.saturating_sub(1);
                if entered && brace == 0 {
                    break;
                }
            } else if tokens[m].is_punct(';') && !entered {
                break;
            }
            m += 1;
        }
        for flag in test.iter_mut().take((m + 1).min(tokens.len())).skip(i) {
            *flag = true;
        }
        i = m + 1;
    }
    test
}

/// Records every `fn` item's name, visibility, and body span.
fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) else {
            // `Fn()` trait bounds and `fn(…)` pointer types.
            i += 1;
            continue;
        };
        let is_pub = is_pub_before(tokens, i);
        // The body `{` follows the signature; a `;` first means a trait
        // method declaration or extern item with no body. Angle-bracket
        // depth guards against `… -> impl Iterator<Item = fn()>`-ish
        // signatures tricking the scan (none exist today, but cheap).
        let mut j = i + 2;
        let mut body_start = None;
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                body_start = Some(j);
                break;
            }
            if tokens[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let (body_start, body_end) = match body_start {
            Some(s) => {
                let mut depth = 0usize;
                let mut e = s;
                while e < tokens.len() {
                    if tokens[e].is_punct('{') {
                        depth += 1;
                    } else if tokens[e].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    e += 1;
                }
                (Some(s), e + 1)
            }
            None => (None, j + 1),
        };
        fns.push(FnSpan {
            name: name.to_string(),
            line: tokens[i].line,
            body_start,
            body_end,
            is_pub,
        });
        // Continue from after the name so nested fns are found too.
        i += 2;
    }
    fns
}

/// Whether the tokens immediately before index `i` spell a visibility
/// modifier (`pub`, `pub(crate)`, `pub(in …)`).
fn is_pub_before(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    // Walk back over qualifiers: async, unsafe, const, extern "C".
    while j > 0 {
        let prev = &tokens[j - 1];
        if prev.is_ident("async")
            || prev.is_ident("unsafe")
            || prev.is_ident("const")
            || prev.is_ident("extern")
            || matches!(prev.tok, crate::lexer::Tok::Str(_))
        {
            j -= 1;
            continue;
        }
        break;
    }
    if j == 0 {
        return false;
    }
    if tokens[j - 1].is_ident("pub") {
        return true;
    }
    // pub(crate): … `pub` `(` … `)` fn — walk back over one paren group.
    if tokens[j - 1].is_punct(')') {
        let mut depth = 0usize;
        let mut k = j - 1;
        loop {
            if tokens[k].is_punct(')') {
                depth += 1;
            } else if tokens[k].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return false;
            }
            k -= 1;
        }
        return k > 0 && tokens[k - 1].is_ident("pub");
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_marked() {
        let m = FileModel::new(
            "x.rs".into(),
            "fn prod() { a(); }\n#[cfg(test)]\nmod tests {\n fn t() { b(); }\n}\n",
        );
        let a = m.tokens.iter().position(|t| t.is_ident("a")).unwrap();
        let b = m.tokens.iter().position(|t| t.is_ident("b")).unwrap();
        assert!(!m.is_test[a]);
        assert!(m.is_test[b]);
    }

    #[test]
    fn cfg_not_test_is_production() {
        let m = FileModel::new("x.rs".into(), "#[cfg(not(test))]\nfn prod() { a(); }\n");
        let a = m.tokens.iter().position(|t| t.is_ident("a")).unwrap();
        assert!(!m.is_test[a]);
    }

    #[test]
    fn test_attribute_on_fn_is_marked_and_scoped() {
        let m = FileModel::new(
            "x.rs".into(),
            "#[test]\nfn t() { b(); }\nfn prod() { a(); }\n",
        );
        let a = m.tokens.iter().position(|t| t.is_ident("a")).unwrap();
        let b = m.tokens.iter().position(|t| t.is_ident("b")).unwrap();
        assert!(m.is_test[b]);
        assert!(!m.is_test[a]);
    }

    #[test]
    fn fn_spans_and_visibility() {
        let m = FileModel::new(
            "x.rs".into(),
            "pub fn a() { inner(); }\npub(crate) fn b() {}\nfn c() {}\n",
        );
        let names: Vec<(&str, bool)> = m.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(names, vec![("a", true), ("b", true), ("c", false)]);
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let m = FileModel::new(
            "x.rs".into(),
            "fn outer() { fn inner() { x(); } inner(); }\n",
        );
        let x = m.tokens.iter().position(|t| t.is_ident("x")).unwrap();
        assert_eq!(m.enclosing_fn(x).unwrap().name, "inner");
    }

    #[test]
    fn bodyless_trait_methods_are_recorded() {
        let m = FileModel::new("x.rs".into(), "trait T { fn f(&self); }\n");
        assert_eq!(m.fns.len(), 1);
        assert!(m.fns[0].body_start.is_none());
    }
}
