//! Typed views over `machlint.toml` and `lint-baseline.toml`.
//!
//! Loading is strict: unknown lock classes, allowlist entries missing a
//! `reason`, or malformed values are hard errors. An allowlist bypass
//! without a written justification is exactly the kind of silent decay
//! machlint exists to prevent.

use crate::toml::{Doc, Table};
use std::collections::BTreeMap;

/// Full machlint configuration (from `machlint.toml`).
#[derive(Debug)]
pub struct Config {
    /// Directories (relative to the workspace root) to scan.
    pub include: Vec<String>,
    /// Path prefixes to skip (vendored shims, fixtures, build output).
    pub exclude: Vec<String>,
    /// L1 lock-order configuration.
    pub lock: LockConfig,
    /// L2 sim-time purity configuration.
    pub sim_time: SimTimeConfig,
    /// L3 counter-key configuration.
    pub counter_keys: CounterKeysConfig,
    /// L5 trace-coverage configuration.
    pub trace: TraceConfig,
    /// L7 atomic-ordering audit configuration.
    pub atomics: AtomicsConfig,
    /// L8 condvar wait-loop configuration.
    pub condvar: CondvarConfig,
    /// L9 unchecked-send configuration.
    pub send: SendConfig,
}

/// L1: the declared lock hierarchy and where it applies.
#[derive(Debug)]
pub struct LockConfig {
    /// Class names, outermost first; index is the class's rank.
    pub hierarchy: Vec<String>,
    /// Files (workspace-relative) the lint analyzes.
    pub files: Vec<String>,
    /// Struct-field name → class name; an acquisition is classified by
    /// the field it goes through (`…​.state.lock()` → that field's class).
    pub fields: BTreeMap<String, String>,
    /// Functions exempt from the ordering check, with justification.
    pub allow: Vec<FnAllow>,
}

impl LockConfig {
    /// Rank of `class` in the hierarchy, if declared.
    pub fn rank(&self, class: &str) -> Option<usize> {
        self.hierarchy.iter().position(|c| c == class)
    }

    /// Whether (file, function) carries a justified exemption.
    pub fn allowed(&self, file: &str, function: &str) -> bool {
        self.allow
            .iter()
            .any(|a| a.file == file && a.function == function)
    }
}

/// L2: which files may touch the real clock.
#[derive(Debug)]
pub struct SimTimeConfig {
    /// Files (workspace-relative) allowed to use wall-clock primitives.
    pub allow: Vec<FileAllow>,
}

impl SimTimeConfig {
    /// Whether `file` is a justified wall-clock site.
    pub fn allowed(&self, file: &str) -> bool {
        self.allow.iter().any(|a| a.file == file)
    }
}

/// L3: registry methods whose first argument must be a `keys::` const.
#[derive(Debug)]
pub struct CounterKeysConfig {
    /// Method names checked for literal first arguments.
    pub methods: Vec<String>,
    /// The file declaring the canonical key consts (for the regression
    /// test tying machlint to `stats::keys::ALL`).
    pub keys_file: String,
}

/// L5: sim-time-charging entry points must emit trace events.
/// L6: span-instrumented files must pair every phase open with a close.
#[derive(Debug)]
pub struct TraceConfig {
    /// Files (workspace-relative) holding the charged entry points.
    pub files: Vec<String>,
    /// Files (workspace-relative) instrumented with phase spans; each
    /// must open and close the same set of span-name literals (L6).
    pub span_files: Vec<String>,
    /// Methods that charge the simulated clock.
    pub charge_methods: Vec<String>,
    /// Identifiers that count as emitting observability.
    pub emitters: Vec<String>,
    /// Functions exempt from the coverage check, with justification.
    pub allow: Vec<FnAllow>,
}

impl TraceConfig {
    /// Whether (file, function) carries a justified exemption.
    pub fn allowed(&self, file: &str, function: &str) -> bool {
        self.allow
            .iter()
            .any(|a| a.file == file && a.function == function)
    }
}

/// L7: where `Ordering::` literals are audited and which are justified.
#[derive(Debug)]
pub struct AtomicsConfig {
    /// Path prefixes exempt from the audit (the simulator's wall-clock
    /// airlock and the model checker's shims define orderings, they
    /// don't consume them).
    pub exempt: Vec<String>,
    /// Per-file justified ordering sets.
    pub allow: Vec<OrderingAllow>,
}

impl AtomicsConfig {
    /// Whether `file` sits under an exempt prefix.
    pub fn exempt(&self, file: &str) -> bool {
        self.exempt
            .iter()
            .any(|p| file == p || file.starts_with(&format!("{p}/")))
    }

    /// Whether `file` carries a justified entry covering `ordering`.
    pub fn allowed(&self, file: &str, ordering: &str) -> bool {
        self.allow
            .iter()
            .any(|a| a.file == file && a.orderings.iter().any(|o| o == ordering))
    }
}

/// One file's justified atomic-ordering set; `reason` is mandatory.
#[derive(Debug)]
pub struct OrderingAllow {
    /// Workspace-relative file path.
    pub file: String,
    /// The orderings this file may use (`Relaxed` … `SeqCst`).
    pub orderings: Vec<String>,
    /// The protocol argument justifying them. Never empty.
    pub reason: String,
}

/// L8: which files' condvar waits must loop on their predicate.
#[derive(Debug)]
pub struct CondvarConfig {
    /// Files (workspace-relative) the lint analyzes.
    pub files: Vec<String>,
    /// Functions whose caller owns the re-check loop, with justification.
    pub allow: Vec<FnAllow>,
}

impl CondvarConfig {
    /// Whether (file, function) carries a justified exemption.
    pub fn allowed(&self, file: &str, function: &str) -> bool {
        self.allow
            .iter()
            .any(|a| a.file == file && a.function == function)
    }
}

/// L9: delivery methods whose discarded Results need justification.
#[derive(Debug)]
pub struct SendConfig {
    /// Method names whose `Result` may not be `let _ =`-discarded
    /// without an allowlist entry.
    pub methods: Vec<String>,
    /// Functions with a justified discard, with reason.
    pub allow: Vec<FnAllow>,
}

impl SendConfig {
    /// Whether (file, function) carries a justified exemption.
    pub fn allowed(&self, file: &str, function: &str) -> bool {
        self.allow
            .iter()
            .any(|a| a.file == file && a.function == function)
    }
}

/// A per-function exemption; `reason` is mandatory.
#[derive(Debug)]
pub struct FnAllow {
    /// Workspace-relative file path.
    pub file: String,
    /// Function name within that file.
    pub function: String,
    /// Why the bypass is sound. Never empty.
    pub reason: String,
}

/// A per-file exemption; `reason` is mandatory.
#[derive(Debug)]
pub struct FileAllow {
    /// Workspace-relative file path.
    pub file: String,
    /// Why the bypass is sound. Never empty.
    pub reason: String,
}

/// The L4 ratchet baseline (from `lint-baseline.toml`): crate key →
/// committed `unwrap()` count.
pub type Baseline = BTreeMap<String, i64>;

impl Config {
    /// Builds a config from a parsed `machlint.toml`, validating
    /// cross-references.
    pub fn from_doc(doc: &Doc) -> Result<Config, String> {
        let include = doc.get_str_array("scan", "include");
        if include.is_empty() {
            return Err("[scan] include must list at least one directory".into());
        }
        let exclude = doc.get_str_array("scan", "exclude");

        let hierarchy = doc.get_str_array("lock", "hierarchy");
        if hierarchy.is_empty() {
            return Err("[lock] hierarchy must list the lock classes in rank order".into());
        }
        let lock_files = doc.get_str_array("lock", "files");
        let mut fields = BTreeMap::new();
        if let Some(table) = doc.table("lock.fields") {
            for (field, class) in table {
                let class = class
                    .as_str()
                    .ok_or_else(|| format!("[lock.fields] {field} must be a class name string"))?;
                if !hierarchy.iter().any(|c| c == class) {
                    return Err(format!(
                        "[lock.fields] {field} names unknown class `{class}` \
                         (hierarchy: {})",
                        hierarchy.join(" → ")
                    ));
                }
                fields.insert(field.clone(), class.to_string());
            }
        }
        let lock = LockConfig {
            hierarchy,
            files: lock_files,
            fields,
            allow: fn_allows(doc, "lock.allow")?,
        };

        let sim_time = SimTimeConfig {
            allow: file_allows(doc, "sim_time.allow")?,
        };

        let methods = doc.get_str_array("counter_keys", "methods");
        if methods.is_empty() {
            return Err("[counter_keys] methods must list the registry call names".into());
        }
        let keys_file = doc
            .get_str("counter_keys", "keys_file")
            .ok_or("[counter_keys] keys_file is required")?
            .to_string();
        let counter_keys = CounterKeysConfig { methods, keys_file };

        let trace = TraceConfig {
            files: doc.get_str_array("trace", "files"),
            span_files: doc.get_str_array("trace", "span_files"),
            charge_methods: doc.get_str_array("trace", "charge_methods"),
            emitters: doc.get_str_array("trace", "emitters"),
            allow: fn_allows(doc, "trace.allow")?,
        };
        if !trace.files.is_empty() && (trace.charge_methods.is_empty() || trace.emitters.is_empty())
        {
            return Err("[trace] files without charge_methods/emitters checks nothing".into());
        }

        let atomics = AtomicsConfig {
            exempt: doc.get_str_array("atomics", "exempt"),
            allow: ordering_allows(doc, "atomics.allow")?,
        };
        let condvar = CondvarConfig {
            files: doc.get_str_array("condvar", "files"),
            allow: fn_allows(doc, "condvar.allow")?,
        };
        let send = SendConfig {
            methods: doc.get_str_array("send", "methods"),
            allow: fn_allows(doc, "send.allow")?,
        };
        if !send.allow.is_empty() && send.methods.is_empty() {
            return Err("[[send.allow]] entries without [send] methods check nothing".into());
        }

        Ok(Config {
            include,
            exclude,
            lock,
            sim_time,
            counter_keys,
            trace,
            atomics,
            condvar,
            send,
        })
    }
}

/// Reads `[[path]]` entries with mandatory file/orderings/reason,
/// validating each ordering name.
fn ordering_allows(doc: &Doc, path: &str) -> Result<Vec<OrderingAllow>, String> {
    doc.table_array(path)
        .iter()
        .map(|t| {
            let orderings: Vec<String> = t
                .get("orderings")
                .and_then(|v| v.as_str_array())
                .ok_or_else(|| format!("every [[{path}]] entry needs an `orderings` array"))?
                .to_vec();
            if orderings.is_empty() {
                return Err(format!("[[{path}]] `orderings` must not be empty"));
            }
            for o in &orderings {
                if !crate::lints::atomics::ORDERINGS.contains(&o.as_str()) {
                    return Err(format!(
                        "[[{path}]] names unknown ordering `{o}` (valid: {})",
                        crate::lints::atomics::ORDERINGS.join(", ")
                    ));
                }
            }
            Ok(OrderingAllow {
                file: require_str(t, path, "file")?,
                orderings,
                reason: require_str(t, path, "reason")?,
            })
        })
        .collect()
}

/// Reads `[[path]]` entries with mandatory file/function/reason.
fn fn_allows(doc: &Doc, path: &str) -> Result<Vec<FnAllow>, String> {
    doc.table_array(path)
        .iter()
        .map(|t| {
            Ok(FnAllow {
                file: require_str(t, path, "file")?,
                function: require_str(t, path, "function")?,
                reason: require_str(t, path, "reason")?,
            })
        })
        .collect()
}

/// Reads `[[path]]` entries with mandatory file/reason.
fn file_allows(doc: &Doc, path: &str) -> Result<Vec<FileAllow>, String> {
    doc.table_array(path)
        .iter()
        .map(|t| {
            Ok(FileAllow {
                file: require_str(t, path, "file")?,
                reason: require_str(t, path, "reason")?,
            })
        })
        .collect()
}

/// A non-empty string field of an allowlist entry.
fn require_str(t: &Table, path: &str, key: &str) -> Result<String, String> {
    let v = t
        .get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("every [[{path}]] entry needs a `{key}` string"))?;
    if v.trim().is_empty() {
        return Err(format!("[[{path}]] `{key}` must not be empty"));
    }
    Ok(v.to_string())
}

/// Parses `lint-baseline.toml`'s `[unwraps]` table.
pub fn baseline_from_doc(doc: &Doc) -> Result<Baseline, String> {
    let table = doc
        .table("unwraps")
        .ok_or("lint-baseline.toml must have an [unwraps] table")?;
    let mut out = Baseline::new();
    for (k, v) in table {
        let n = v
            .as_int()
            .ok_or_else(|| format!("[unwraps] {k} must be an integer"))?;
        if n < 0 {
            return Err(format!("[unwraps] {k} must be non-negative"));
        }
        out.insert(k.clone(), n);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toml;

    fn minimal() -> String {
        r#"
[scan]
include = ["crates"]
exclude = ["compat"]

[lock]
hierarchy = ["shard", "frame-meta", "frame-data", "queues", "numa-pool"]
files = ["crates/vm/src/resident.rs"]

[lock.fields]
state = "shard"
meta = "frame-meta"
data = "frame-data"
queues = "queues"

[counter_keys]
methods = ["counter", "incr", "add"]
keys_file = "crates/sim/src/stats.rs"

[trace]
files = ["crates/vm/src/fault.rs"]
charge_methods = ["charge"]
emitters = ["trace_event"]
"#
        .to_string()
    }

    #[test]
    fn minimal_config_loads() {
        let doc = toml::parse(&minimal()).unwrap();
        let cfg = Config::from_doc(&doc).unwrap();
        assert_eq!(cfg.lock.rank("queues"), Some(3));
        assert_eq!(cfg.lock.fields["meta"], "frame-meta");
    }

    #[test]
    fn unknown_lock_class_is_rejected() {
        let src = minimal().replace("meta = \"frame-meta\"", "meta = \"frame-metta\"");
        let doc = toml::parse(&src).unwrap();
        let err = Config::from_doc(&doc).unwrap_err();
        assert!(err.contains("unknown class"), "{err}");
    }

    #[test]
    fn allow_entries_require_reasons() {
        let src = format!(
            "{}\n[[lock.allow]]\nfile = \"a.rs\"\nfunction = \"f\"\n",
            minimal()
        );
        let doc = toml::parse(&src).unwrap();
        let err = Config::from_doc(&doc).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn ordering_allows_parse_and_validate_names() {
        let src = format!(
            "{}\n[atomics]\nexempt = [\"crates/sim\"]\n\n[[atomics.allow]]\n\
             file = \"crates/ipc/src/port.rs\"\norderings = [\"Acquire\", \"Relaxed\"]\n\
             reason = \"depth protocol\"\n",
            minimal()
        );
        let cfg = Config::from_doc(&toml::parse(&src).expect("parses")).expect("validates");
        assert!(cfg.atomics.exempt("crates/sim/src/wall.rs"));
        assert!(cfg.atomics.allowed("crates/ipc/src/port.rs", "Acquire"));
        assert!(!cfg.atomics.allowed("crates/ipc/src/port.rs", "SeqCst"));

        let bad = src.replace("\"Relaxed\"", "\"Relaxd\"");
        let err = Config::from_doc(&toml::parse(&bad).expect("parses")).unwrap_err();
        assert!(err.contains("unknown ordering"), "{err}");
    }

    #[test]
    fn send_allow_without_methods_is_rejected() {
        let src = format!(
            "{}\n[[send.allow]]\nfile = \"a.rs\"\nfunction = \"f\"\nreason = \"r\"\n",
            minimal()
        );
        let err = Config::from_doc(&toml::parse(&src).expect("parses")).unwrap_err();
        assert!(err.contains("[send] methods"), "{err}");
    }

    #[test]
    fn baseline_parses_and_rejects_negatives() {
        let doc = toml::parse("[unwraps]\n\"crates/vm\" = 40\nroot = 7\n").unwrap();
        let b = baseline_from_doc(&doc).unwrap();
        assert_eq!(b["crates/vm"], 40);
        let doc = toml::parse("[unwraps]\nroot = -1\n").unwrap();
        assert!(baseline_from_doc(&doc).is_err());
    }
}
