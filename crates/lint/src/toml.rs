//! A minimal TOML reader for machlint's two config files.
//!
//! The offline build environment rules out the `toml` crate, and the
//! configs (`machlint.toml`, `lint-baseline.toml`) use a small, stable
//! subset of the format: `[tables]`, `[[arrays of tables]]`, dotted-free
//! bare keys, and string / integer / boolean / array-of-string values.
//! This parser covers exactly that subset and rejects everything else
//! loudly, so a typo in a config file is a hard error rather than a
//! silently ignored lint rule.

use std::collections::BTreeMap;

/// A parsed TOML value (subset).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A basic or literal string.
    Str(String),
    /// A (decimal, possibly negative) integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array of strings.
    StrArray(Vec<String>),
}

impl Value {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The array of strings, if this is one.
    pub fn as_str_array(&self) -> Option<&[String]> {
        match self {
            Value::StrArray(v) => Some(v),
            _ => None,
        }
    }
}

/// One table: key → value, insertion-independent (sorted) for stable output.
pub type Table = BTreeMap<String, Value>;

/// A parsed document.
///
/// `tables` maps a header path like `"lock"` or `"counter_keys"` to its
/// table ([""] is the root table); `table_arrays` maps a path like
/// `"lock.allow"` to the list of `[[...]]` entries in file order.
#[derive(Clone, Debug, Default)]
pub struct Doc {
    /// `[header]` tables, keyed by dotted path; `""` is the root table.
    pub tables: BTreeMap<String, Table>,
    /// `[[header]]` arrays of tables, keyed by dotted path.
    pub table_arrays: BTreeMap<String, Vec<Table>>,
}

impl Doc {
    /// The table at `path`, if present.
    pub fn table(&self, path: &str) -> Option<&Table> {
        self.tables.get(path)
    }

    /// The array of tables at `path`; empty slice when absent.
    pub fn table_array(&self, path: &str) -> &[Table] {
        self.table_arrays.get(path).map(|v| &v[..]).unwrap_or(&[])
    }

    /// A string value at `table_path` / `key`.
    pub fn get_str(&self, table_path: &str, key: &str) -> Option<&str> {
        self.tables.get(table_path)?.get(key)?.as_str()
    }

    /// A string-array value at `table_path` / `key`; empty when absent.
    pub fn get_str_array(&self, table_path: &str, key: &str) -> Vec<String> {
        self.tables
            .get(table_path)
            .and_then(|t| t.get(key))
            .and_then(|v| v.as_str_array())
            .map(|v| v.to_vec())
            .unwrap_or_default()
    }
}

/// Parses `src`, returning the document or a line-stamped error message.
pub fn parse(src: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    // Where key/value lines currently land: either a named table or the
    // last entry of a named array of tables.
    enum Cursor {
        Table(String),
        ArrayEntry(String),
    }
    let mut cursor = Cursor::Table(String::new());
    doc.tables.insert(String::new(), Table::new());

    let lines: Vec<&str> = src.lines().collect();
    let mut idx = 0;
    while idx < lines.len() {
        let lineno = idx + 1;
        let line = strip_comment(lines[idx]).trim().to_string();
        idx += 1;
        if line.is_empty() {
            continue;
        }
        let line = line.as_str();
        if let Some(path) = line
            .strip_prefix("[[")
            .and_then(|rest| rest.strip_suffix("]]"))
        {
            let path = path.trim().to_string();
            if path.is_empty() {
                return Err(format!("line {lineno}: empty [[table]] header"));
            }
            doc.table_arrays
                .entry(path.clone())
                .or_default()
                .push(Table::new());
            cursor = Cursor::ArrayEntry(path);
            continue;
        }
        if let Some(path) = line
            .strip_prefix('[')
            .and_then(|rest| rest.strip_suffix(']'))
        {
            let path = path.trim().to_string();
            if path.is_empty() {
                return Err(format!("line {lineno}: empty [table] header"));
            }
            doc.tables.entry(path.clone()).or_default();
            cursor = Cursor::Table(path);
            continue;
        }
        let Some(eq) = find_unquoted(line, '=') else {
            return Err(format!(
                "line {lineno}: expected `key = value`, got `{line}`"
            ));
        };
        let key = unquote_key(line[..eq].trim()).map_err(|e| format!("line {lineno}: {e}"))?;
        // Arrays may span lines; accumulate until the brackets balance.
        let mut vtext = line[eq + 1..].trim().to_string();
        while vtext.starts_with('[') && bracket_depth(&vtext) > 0 {
            let Some(next) = lines.get(idx) else {
                return Err(format!("line {lineno}: unclosed array"));
            };
            vtext.push(' ');
            vtext.push_str(strip_comment(next).trim());
            idx += 1;
        }
        let value = parse_value(&vtext).map_err(|e| format!("line {lineno}: {e}"))?;
        let table = match &cursor {
            Cursor::Table(path) => doc
                .tables
                .get_mut(path)
                .expect("cursor always points at an inserted table"),
            Cursor::ArrayEntry(path) => doc
                .table_arrays
                .get_mut(path)
                .and_then(|v| v.last_mut())
                .expect("cursor always points at a pushed array entry"),
        };
        if table.insert(key.clone(), value).is_some() {
            return Err(format!("line {lineno}: duplicate key `{key}`"));
        }
    }
    Ok(doc)
}

/// Serializes a flat table as `key = value` lines (keys sorted), used by
/// `--update-baseline` to rewrite `lint-baseline.toml` deterministically.
pub fn write_table(table: &Table) -> String {
    let mut out = String::new();
    for (k, v) in table {
        let key = if k
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
        {
            k.clone()
        } else {
            format!("\"{k}\"")
        };
        let val = match v {
            Value::Str(s) => format!("\"{s}\""),
            Value::Int(i) => i.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::StrArray(a) => {
                let items: Vec<String> = a.iter().map(|s| format!("\"{s}\"")).collect();
                format!("[{}]", items.join(", "))
            }
        };
        out.push_str(&format!("{key} = {val}\n"));
    }
    out
}

/// Net count of unquoted `[` minus `]` — >0 means an array is still open.
fn bracket_depth(s: &str) -> i32 {
    let mut depth = 0;
    let mut in_str = false;
    let mut quote = '"';
    let mut escaped = false;
    for c in s.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' && quote == '"' {
                escaped = true;
            } else if c == quote {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' | '\'' => {
                in_str = true;
                quote = c;
            }
            '[' => depth += 1,
            ']' => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Removes a `#` comment, ignoring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    match find_unquoted(line, '#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Byte index of the first unquoted `needle`, if any.
fn find_unquoted(line: &str, needle: char) -> Option<usize> {
    let mut in_str = false;
    let mut quote = '"';
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' && quote == '"' {
                escaped = true;
            } else if c == quote {
                in_str = false;
            }
            continue;
        }
        if c == '"' || c == '\'' {
            in_str = true;
            quote = c;
            continue;
        }
        if c == needle {
            return Some(i);
        }
    }
    None
}

/// Parses a key: bare (`a-b_c`) or quoted (`"crates/vm"`).
fn unquote_key(key: &str) -> Result<String, String> {
    if let Some(inner) = key
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
    {
        return Ok(inner.to_string());
    }
    if !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
    {
        return Ok(key.to_string());
    }
    Err(format!("invalid key `{key}`"))
}

/// Parses a value: string, integer, boolean, or array of strings.
fn parse_value(v: &str) -> Result<Value, String> {
    if let Some(s) = parse_string(v) {
        return Ok(Value::Str(s));
    }
    if v == "true" {
        return Ok(Value::Bool(true));
    }
    if v == "false" {
        return Ok(Value::Bool(false));
    }
    if let Ok(i) = v.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Some(inner) = v.strip_prefix('[').and_then(|rest| rest.strip_suffix(']')) {
        let mut items = Vec::new();
        for piece in split_array(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            match parse_string(piece) {
                Some(s) => items.push(s),
                None => return Err(format!("array element `{piece}` is not a string")),
            }
        }
        return Ok(Value::StrArray(items));
    }
    Err(format!("unsupported value `{v}`"))
}

/// Parses a `"basic"` or `'literal'` string (no multi-line forms).
fn parse_string(v: &str) -> Option<String> {
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        let inner = &v[1..v.len() - 1];
        let mut out = String::new();
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some(other) => out.push(other),
                    None => {}
                }
            } else {
                out.push(c);
            }
        }
        return Some(out);
    }
    if v.len() >= 2 && v.starts_with('\'') && v.ends_with('\'') {
        return Some(v[1..v.len() - 1].to_string());
    }
    None
}

/// Splits array contents on commas outside quotes (arrays don't nest in
/// this subset).
fn split_array(inner: &str) -> Vec<&str> {
    let mut pieces = Vec::new();
    let mut start = 0;
    let mut rest = inner;
    let mut base = 0;
    while let Some(i) = find_unquoted(rest, ',') {
        pieces.push(&inner[start..base + i]);
        start = base + i + 1;
        base = start;
        rest = &inner[start..];
    }
    pieces.push(&inner[start..]);
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_arrays_of_tables() {
        let doc = parse(
            r#"
top = 1
[lock]
hierarchy = ["shard", "frame-meta"]

[[lock.allow]]
file = "a.rs" # trailing comment
function = "f"

[[lock.allow]]
file = "b.rs"
function = "g"
"#,
        )
        .unwrap();
        assert_eq!(doc.tables[""]["top"], Value::Int(1));
        assert_eq!(
            doc.get_str_array("lock", "hierarchy"),
            vec!["shard".to_string(), "frame-meta".to_string()]
        );
        let allow = doc.table_array("lock.allow");
        assert_eq!(allow.len(), 2);
        assert_eq!(allow[0]["file"].as_str(), Some("a.rs"));
        assert_eq!(allow[1]["function"].as_str(), Some("g"));
    }

    #[test]
    fn quoted_keys_hold_slashes() {
        let doc = parse("[unwraps]\n\"crates/vm\" = 104\n").unwrap();
        assert_eq!(doc.tables["unwraps"]["crates/vm"], Value::Int(104));
    }

    #[test]
    fn comments_and_hash_in_strings() {
        let doc = parse("reason = \"bypass # not a comment\" # real comment\n").unwrap();
        assert_eq!(doc.get_str("", "reason"), Some("bypass # not a comment"));
    }

    #[test]
    fn multiline_arrays_with_trailing_commas() {
        let doc = parse("files = [\n  \"a.rs\", # one\n  \"b.rs\",\n]\n").unwrap();
        assert_eq!(
            doc.get_str_array("", "files"),
            vec!["a.rs".to_string(), "b.rs".to_string()]
        );
    }

    #[test]
    fn bad_lines_error_with_line_numbers() {
        let err = parse("ok = 1\nnot a kv line\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = parse("a = 1\na = 2\n").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn roundtrips_baseline_table() {
        let mut t = Table::new();
        t.insert("crates/vm".into(), Value::Int(40));
        t.insert("root".into(), Value::Int(7));
        let text = write_table(&t);
        let doc = parse(&format!("[unwraps]\n{text}")).unwrap();
        assert_eq!(doc.tables["unwraps"]["crates/vm"], Value::Int(40));
        assert_eq!(doc.tables["unwraps"]["root"], Value::Int(7));
    }
}
