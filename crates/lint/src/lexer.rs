//! A minimal Rust lexer producing line-stamped tokens.
//!
//! machlint's lints work on token streams, not syntax trees: every rule it
//! enforces (lock nesting, forbidden calls, literal arguments, `unwrap()`
//! counts) is visible at the token level once comments, strings and char
//! literals are lexed correctly — which is exactly the part naive
//! regex-based checkers get wrong. The lexer handles nested block
//! comments, raw strings (`r#"..."#`), byte strings, char literals and
//! lifetimes; it does not attempt to join multi-character operators,
//! because no lint needs them.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A lifetime (without the leading `'`).
    Lifetime(String),
    /// A string or byte-string literal (contents, escapes unprocessed).
    Str(String),
    /// Any other literal: number, char, byte char.
    OtherLit,
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// The identifier's text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }
}

/// Lexes `src` into tokens. Unterminated constructs consume to EOF
/// rather than erroring: lints prefer partial results over hard failure.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = b.len();

    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Nested block comment.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump!();
                }
            }
            continue;
        }
        // Identifier / keyword — possibly a string prefix (r, b, br, rb).
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut s = String::new();
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                s.push(b[i]);
                i += 1;
            }
            // String prefixes: r"", r#""#, b"", br#""#, ...
            let is_raw = matches!(s.as_str(), "r" | "br" | "rb");
            let is_byte = matches!(s.as_str(), "b" | "br" | "rb");
            if i < n && (b[i] == '"' || (is_raw && b[i] == '#')) && (is_raw || is_byte) {
                let (contents, ni, nl) = lex_string(&b, i, line, is_raw);
                out.push(Token {
                    tok: Tok::Str(contents),
                    line: start_line,
                });
                i = ni;
                line = nl;
                continue;
            }
            out.push(Token {
                tok: Tok::Ident(s),
                line: start_line,
            });
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let start_line = line;
            let (contents, ni, nl) = lex_string(&b, i, line, false);
            out.push(Token {
                tok: Tok::Str(contents),
                line: start_line,
            });
            i = ni;
            line = nl;
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let start_line = line;
            // Lifetime: 'ident not closed by another quote.
            if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                let mut j = i + 1;
                let mut name = String::new();
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    name.push(b[j]);
                    j += 1;
                }
                if j >= n || b[j] != '\'' {
                    out.push(Token {
                        tok: Tok::Lifetime(name),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
            }
            // Char literal: consume to the closing quote, honoring escapes.
            i += 1;
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '\'' {
                    i += 1;
                    break;
                }
                bump!();
            }
            out.push(Token {
                tok: Tok::OtherLit,
                line: start_line,
            });
            continue;
        }
        // Number literal (suffixes included; `.` excluded so ranges lex
        // as punctuation — floats become three tokens, which no lint
        // cares about).
        if c.is_ascii_digit() {
            let start_line = line;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.push(Token {
                tok: Tok::OtherLit,
                line: start_line,
            });
            continue;
        }
        // Punctuation.
        out.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        bump!();
    }
    out
}

/// Lexes a string literal starting at `i` (at the opening `"` or the `#`s
/// of a raw string). Returns (contents, next index, next line).
fn lex_string(b: &[char], mut i: usize, mut line: u32, raw: bool) -> (String, usize, u32) {
    let n = b.len();
    let mut hashes = 0;
    if raw {
        while i < n && b[i] == '#' {
            hashes += 1;
            i += 1;
        }
    }
    debug_assert!(i >= n || b[i] == '"');
    i += 1; // opening quote
    let mut contents = String::new();
    while i < n {
        if !raw && b[i] == '\\' {
            if i + 1 < n {
                contents.push(b[i + 1]);
            }
            i += 2;
            continue;
        }
        if b[i] == '"' {
            if raw {
                // Need `hashes` trailing #s to close.
                let mut j = i + 1;
                let mut seen = 0;
                while j < n && b[j] == '#' && seen < hashes {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return (contents, j, line);
                }
            } else {
                return (contents, i + 1, line);
            }
        }
        if b[i] == '\n' {
            line += 1;
        }
        contents.push(b[i]);
        i += 1;
    }
    (contents, i, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_skipped() {
        let src = "a // Instant::now()\n/* thread::sleep /* nested */ */ b";
        assert_eq!(idents(src), vec!["a", "b"]);
    }

    #[test]
    fn strings_hide_their_contents_from_ident_scan() {
        let src = r#"x("Instant::now()"); y"#;
        assert_eq!(idents(src), vec!["x", "y"]);
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = lex(r##"r#"quote " inside"# b"bytes" br#"both"#"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["quote \" inside", "bytes", "both"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Lifetime(l) if l == "a")));
        assert!(toks.iter().any(|t| t.tok == Tok::OtherLit));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = lex("\"two\nlines\" after");
        assert_eq!(toks[1].line, 2);
        assert!(toks[1].is_ident("after"));
    }

    #[test]
    fn ranges_do_not_merge_into_numbers() {
        let toks = lex("0..n");
        assert_eq!(toks.len(), 4); // 0, ., ., n
        assert!(toks[3].is_ident("n"));
    }
}
