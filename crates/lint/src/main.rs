//! machlint CLI.
//!
//! ```text
//! machlint --workspace [--root PATH] [--update-baseline]
//! ```
//!
//! Exits 0 on a clean tree, 1 with `file:line: [lint] message` spans on
//! findings, 2 on configuration errors. `scripts/check.sh` and CI run
//! this as a hard gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut update_baseline = false;
    let mut workspace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--update-baseline" => update_baseline = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("machlint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: machlint --workspace [--root PATH] [--update-baseline]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("machlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if !workspace {
        eprintln!("machlint: nothing to do; pass --workspace to lint the tree");
        return ExitCode::from(2);
    }

    let report = match machlint::run(&root, update_baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("machlint: {e}");
            return ExitCode::from(2);
        }
    };
    for note in &report.notes {
        println!("note: {note}");
    }
    for finding in &report.findings {
        println!("{finding}");
    }
    if report.findings.is_empty() {
        println!(
            "machlint: clean ({} files, 9 lints: lock-order sim-time counter-key \
             panic-budget trace-cover span-pair atomic-ordering condvar-wait \
             unchecked-send)",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "machlint: {} finding(s) across {} files",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::from(1)
    }
}
