//! End-to-end: the machlint binary against a synthetic workspace —
//! non-zero exit with `file:line:` spans on violations, zero on a clean
//! tree, and `--update-baseline` ratchets the committed budget.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Creates a fresh scratch workspace under the target tmpdir.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("scratch dir is removable");
    }
    std::fs::create_dir_all(dir.join("src")).expect("scratch dir is creatable");
    dir
}

const CONFIG: &str = r#"
[scan]
include = ["src"]

[lock]
hierarchy = ["shard", "queues"]
files = ["src/bad.rs"]

[lock.fields]
state = "shard"
queues = "queues"

[counter_keys]
methods = ["incr"]
keys_file = "src/keys.rs"

[trace]
files = ["src/bad.rs"]
charge_methods = ["charge"]
emitters = ["trace_event"]
"#;

const BAD: &str = r#"pub fn f(&self) {
    let q = self.queues.lock();
    let st = self.shards[0].state.lock();
    let t = Instant::now();
    self.stats.incr("literal.key");
}

pub fn g(&self) {
    self.clock.charge(100);
}
"#;

const CLEAN: &str = r#"pub fn f(&self) {
    let st = self.shards[0].state.lock();
    let q = self.queues.lock();
    self.stats.incr(keys::GOOD);
}

pub fn g(&self) {
    self.clock.charge(100);
    trace_event(m, k);
}
"#;

fn machlint(root: &Path, extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_machlint"))
        .arg("--workspace")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("machlint binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("machlint exits normally"), text)
}

#[test]
fn violations_exit_nonzero_with_file_line_spans() {
    let dir = scratch("machlint-bad");
    std::fs::write(dir.join("machlint.toml"), CONFIG).expect("config written");
    std::fs::write(dir.join("lint-baseline.toml"), "[unwraps]\n").expect("baseline written");
    std::fs::write(dir.join("src/bad.rs"), BAD).expect("source written");

    let (code, text) = machlint(&dir, &[]);
    assert_eq!(code, 1, "violations must fail the gate:\n{text}");
    assert!(
        text.contains("src/bad.rs:3: [lock-order]"),
        "lock-order span missing:\n{text}"
    );
    assert!(
        text.contains("src/bad.rs:4: [sim-time]"),
        "sim-time span missing:\n{text}"
    );
    assert!(
        text.contains("src/bad.rs:5: [counter-key]"),
        "counter-key span missing:\n{text}"
    );
    assert!(
        text.contains("src/bad.rs:8: [trace-cover]"),
        "trace-cover span missing:\n{text}"
    );
}

#[test]
fn clean_tree_exits_zero() {
    let dir = scratch("machlint-clean");
    std::fs::write(dir.join("machlint.toml"), CONFIG).expect("config written");
    std::fs::write(dir.join("lint-baseline.toml"), "[unwraps]\n").expect("baseline written");
    std::fs::write(dir.join("src/bad.rs"), CLEAN).expect("source written");

    let (code, text) = machlint(&dir, &[]);
    assert_eq!(code, 0, "clean tree must pass:\n{text}");
    assert!(text.contains("machlint: clean"), "{text}");
}

#[test]
fn panic_budget_ratchets_via_update_baseline() {
    let dir = scratch("machlint-ratchet");
    std::fs::write(dir.join("machlint.toml"), CONFIG).expect("config written");
    std::fs::write(dir.join("lint-baseline.toml"), "[unwraps]\n").expect("baseline written");
    std::fs::write(
        dir.join("src/bad.rs"),
        "pub fn f() { x.unwrap(); y.unwrap(); }\n",
    )
    .expect("source written");

    // Over budget: fails.
    let (code, text) = machlint(&dir, &[]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("[panic-budget]"), "{text}");
    assert!(text.contains("has 2 unwrap() calls, budget is 0"), "{text}");

    // Ratchet the baseline, then the same tree passes.
    let (code, text) = machlint(&dir, &["--update-baseline"]);
    assert_eq!(code, 0, "{text}");
    let (code, text) = machlint(&dir, &[]);
    assert_eq!(code, 0, "{text}");

    // Improvement: one unwrap converted; the run passes and reminds us
    // to ratchet down.
    std::fs::write(
        dir.join("src/bad.rs"),
        "pub fn f() { x.expect(\"invariant: x resolved\"); y.unwrap(); }\n",
    )
    .expect("source rewritten");
    let (code, text) = machlint(&dir, &[]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("below budget"), "{text}");

    // Regression past the budget fails again.
    std::fs::write(
        dir.join("src/bad.rs"),
        "pub fn f() { w.unwrap(); x.unwrap(); y.unwrap(); }\n",
    )
    .expect("source rewritten");
    let (code, text) = machlint(&dir, &[]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("has 3 unwrap() calls, budget is 2"), "{text}");
}

#[test]
fn config_errors_exit_two() {
    let dir = scratch("machlint-config-error");
    std::fs::write(
        dir.join("machlint.toml"),
        CONFIG.replace("state = \"shard\"", "state = \"sharrd\""),
    )
    .expect("config written");
    std::fs::write(dir.join("lint-baseline.toml"), "[unwraps]\n").expect("baseline written");
    let (code, text) = machlint(&dir, &[]);
    assert_eq!(code, 2, "{text}");
    assert!(text.contains("unknown class"), "{text}");
}
