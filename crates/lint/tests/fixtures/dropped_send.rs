//! L9 fixture: `let _ =` discards of delivery Results must fire unless
//! the enclosing function carries an allowlist entry; handled Results,
//! named bindings, unrelated discards, and test code stay quiet.

pub fn fire_and_forget(&self, msg: Message) {
    let _ = self.port.send(msg); // fires: unjustified discard
}

pub fn broadcast(&self, msgs: Vec<Message>) {
    let _ = self.port.send_many(msgs); // fires
}

pub fn reply_to(msg: &Message, reply: Message) {
    let _ = msg.reply_port.send(reply); // quiet: allowlisted function
}

pub fn handled(&self, msg: Message) -> Result<(), SendError> {
    self.port.send(msg) // quiet: Result propagated
}

pub fn named_binding(&self, msg: Message) {
    let outcome = self.port.send(msg); // quiet: bound, not discarded
    log(outcome);
}

pub fn unrelated_discard(&self, k: Key) {
    let _ = self.map.remove(&k); // quiet: not a delivery method
}

#[cfg(test)]
mod tests {
    #[test]
    fn scenario() {
        let _ = port.send(msg); // quiet: test code
    }
}
