//! Fixture: lock-order violations. Never compiled — machlint's
//! integration tests lex it and assert L1 fires on the marked lines.

pub struct Pm;

impl Pm {
    pub fn out_of_order(&self) {
        let q = self.queues.lock();
        let st = self.shards[0].state.lock(); // line 9: queues → shard
        drop((q, st));
    }

    pub fn meta_after_queues(&self) {
        let q = self.queues.lock();
        let m = frame.meta.lock(); // line 15: queues → frame-meta
        drop((q, m));
    }

    pub fn unlisted_same_class(&self) {
        let a = left.state.lock();
        let b = right.state.lock(); // line 21: shard → shard, no allow entry
        drop((a, b));
    }

    pub fn in_order_is_fine(&self) {
        let st = self.shards[0].state.lock();
        let m = frame.meta.lock();
        let d = frame.data.write();
        let q = self.queues.lock();
        drop((st, m, d, q));
    }

    pub fn scoped_release_is_fine(&self) {
        {
            let q = self.queues.lock();
            drop(q);
        }
        let st = self.shards[0].state.lock();
        drop(st);
    }
}
