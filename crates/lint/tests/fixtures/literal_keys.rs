//! Fixture: counter-key literal violations. Never compiled — machlint's
//! integration tests lex it and assert L3 fires on the marked lines.

pub fn count_things(stats: &StatsRegistry, lat: &LatencyRegistry) {
    stats.incr("vm.faults"); // line 5: literal key
    stats.add("ipc.bytes", 128); // line 6: literal key
    lat.histogram("fault.latency").record_ns(9); // line 7: literal key
    stats.incr(keys::VM_FAULTS); // const key: fine
    stats.add(keys::IPC_BYTES, 128); // const key: fine
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_keys_are_fine_in_tests() {
        let stats = StatsRegistry::default();
        stats.incr("scratch.key"); // test code: L3 stays quiet
    }
}
