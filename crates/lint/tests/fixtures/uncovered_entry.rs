//! Fixture: trace-coverage violations. Never compiled — machlint's
//! integration tests lex it and assert L5 fires on the marked lines.

impl Port {
    pub fn send(&self, msg: Message) -> Result<(), IpcError> { // line 5: charges, no trace
        self.machine.clock.charge(self.machine.cost.send_cost_ns());
        self.queue.push(msg);
        Ok(())
    }

    pub fn traced_send(&self, msg: Message) -> Result<(), IpcError> {
        self.machine.clock.charge(self.machine.cost.send_cost_ns());
        self.machine.trace_event("ipc.send", EventKind::MsgSend);
        self.queue.push(msg);
        Ok(())
    }

    fn private_helper(&self) {
        // Private: out of L5's scope even though it charges.
        self.machine.clock.charge_us(1);
    }

    pub fn uncharged(&self) -> usize {
        // Charges nothing, so needs no trace event.
        self.queue.len()
    }
}
