//! L7 fixture: unlisted orderings must fire; the allowlisted ones, the
//! cmp::Ordering red herring, and test code must stay quiet. The
//! fixture config allowlists only {Acquire, Relaxed} for this file.

pub fn unlisted_seqcst(x: &AtomicUsize) {
    x.store(1, Ordering::SeqCst); // fires: SeqCst not in the allow set
}

pub fn unlisted_release(x: &AtomicUsize) {
    x.store(1, Ordering::Release); // fires
}

pub fn listed_pair(x: &AtomicUsize) -> usize {
    x.fetch_add(1, Ordering::Relaxed);
    x.load(Ordering::Acquire) // quiet: both allowlisted
}

pub fn cmp_is_not_atomic(a: u32, b: u32) -> bool {
    a.cmp(&b) == Ordering::Less // quiet: std::cmp::Ordering
}

use std::sync::atomic::Ordering::{Acquire, Release}; // fires: brace import

#[cfg(test)]
mod tests {
    #[test]
    fn pin_with_seqcst() {
        X.store(1, Ordering::SeqCst); // quiet: test code
    }
}
