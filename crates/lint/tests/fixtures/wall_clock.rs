//! Fixture: sim-time purity violations. Never compiled — machlint's
//! integration tests lex it and assert L2 fires on the marked lines.

use std::time::{Duration, Instant, SystemTime};

pub fn measure() -> Duration {
    let start = Instant::now(); // line 7: wall-clock read
    work();
    start.elapsed()
}

pub fn stamp() -> SystemTime {
    SystemTime::now() // line 13: SystemTime use
}

pub fn nap() {
    std::thread::sleep(Duration::from_millis(10)); // line 17: real sleep
}

pub fn fine(deadline: Instant) -> bool {
    // Holding or comparing an Instant handed out by the airlock is fine;
    // and mentions in comments or strings ("Instant::now()") never fire.
    let _ = "thread::sleep(Duration::ZERO)";
    deadline > some_other_instant()
}
