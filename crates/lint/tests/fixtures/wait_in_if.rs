//! L8 fixture: waits guarded only by an `if` must fire; loop-guarded
//! waits (including inside match arms), the allowlisted step function,
//! and test code must stay quiet.

pub fn wait_under_if(&self) {
    let mut g = self.state.lock().unwrap();
    if g.queue.is_empty() {
        g = self.cv.wait(g).unwrap(); // fires: no re-check on wakeup
    }
}

pub fn timed_wait_under_if(&self) {
    let mut g = self.state.lock().unwrap();
    if g.idle {
        self.cv.wait_for(&mut g, TICK); // fires
    }
}

pub fn wait_in_while(&self) {
    let mut g = self.state.lock().unwrap();
    while g.queue.is_empty() {
        g = self.cv.wait(g).unwrap(); // quiet: predicate loop
    }
}

pub fn wait_in_match_arm_inside_loop(&self) {
    loop {
        let mut g = self.state.lock().unwrap();
        match g.phase {
            Phase::Drained => break,
            Phase::Filling => {
                g = self.cv.wait(g).unwrap(); // quiet: the loop re-checks
            }
        }
    }
}

pub fn step_once(&self) -> bool {
    let mut g = self.state.lock().unwrap();
    if g.may_sleep() {
        self.cv.wait_for(&mut g, TICK); // quiet: allowlisted, caller loops
    }
    g.progressed
}

#[cfg(test)]
mod tests {
    #[test]
    fn scenario() {
        if x {
            cv.wait(g); // quiet: test code
        }
    }
}
