//! Each lint must fire on the known-bad fixtures at exactly the marked
//! spans — and stay quiet on the deliberately-correct code next to them.
//! The fixtures under `tests/fixtures/` are lexed, never compiled, and
//! the workspace scan excludes them (see `machlint.toml` `[scan]`).

use machlint::config::{Config, SimTimeConfig};
use machlint::model::FileModel;
use machlint::{lints, toml, Finding};

/// A config mirroring the real `machlint.toml` shapes, scoped to the
/// fixture paths.
fn fixture_config() -> Config {
    let src = r#"
[scan]
include = ["tests"]

[lock]
hierarchy = ["shard", "frame-meta", "frame-data", "queues", "numa-pool"]
files = ["tests/fixtures/bad_lock_order.rs"]

[lock.fields]
state = "shard"
meta = "frame-meta"
data = "frame-data"
queues = "queues"

[counter_keys]
methods = ["counter", "incr", "add", "histogram", "record"]
keys_file = "crates/sim/src/stats.rs"

[trace]
files = ["tests/fixtures/uncovered_entry.rs"]
charge_methods = ["charge", "charge_us", "charge_ms"]
emitters = ["trace_event", "trace_event_with", "record", "enter"]

[atomics]
exempt = ["crates/sim", "crates/mc"]

[[atomics.allow]]
file = "tests/fixtures/bad_ordering.rs"
orderings = ["Acquire", "Relaxed"]
reason = "fixture: pretend an acquire/release protocol is documented"

[condvar]
files = ["tests/fixtures/wait_in_if.rs"]

[[condvar.allow]]
file = "tests/fixtures/wait_in_if.rs"
function = "step_once"
reason = "fixture: the caller owns the re-check loop"

[send]
methods = ["send", "send_many", "notify"]

[[send.allow]]
file = "tests/fixtures/dropped_send.rs"
function = "reply_to"
reason = "fixture: reply ports may die before the reply lands"
"#;
    Config::from_doc(&toml::parse(src).expect("fixture config parses"))
        .expect("fixture config validates")
}

fn spans(findings: &[Finding], lint: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.lint == lint)
        .map(|f| f.line)
        .collect()
}

#[test]
fn lock_order_fires_on_bad_nestings_with_spans() {
    let cfg = fixture_config();
    let model = FileModel::new(
        "tests/fixtures/bad_lock_order.rs".into(),
        include_str!("fixtures/bad_lock_order.rs"),
    );
    let mut findings = Vec::new();
    lints::lock_order::check(&model, &cfg.lock, &mut findings);
    assert_eq!(
        spans(&findings, "lock-order"),
        vec![9, 15, 21],
        "{findings:#?}"
    );
    // The two out-of-order nestings name both classes; the same-class
    // nesting asks for an allowlist entry.
    assert!(findings[0].msg.contains("'shard'") && findings[0].msg.contains("'queues'"));
    assert!(findings[1].msg.contains("'frame-meta'"));
    assert!(findings[2].msg.contains("same-class"));
}

#[test]
fn lock_order_respects_allowlist() {
    let src = r#"
[scan]
include = ["tests"]

[lock]
hierarchy = ["shard", "frame-meta", "frame-data", "queues", "numa-pool"]
files = ["tests/fixtures/bad_lock_order.rs"]

[lock.fields]
state = "shard"

[[lock.allow]]
file = "tests/fixtures/bad_lock_order.rs"
function = "unlisted_same_class"
reason = "fixture: pretend an index-ordering protocol exists"

[counter_keys]
methods = ["incr"]
keys_file = "crates/sim/src/stats.rs"

[trace]
"#;
    let cfg = Config::from_doc(&toml::parse(src).unwrap()).unwrap();
    let model = FileModel::new(
        "tests/fixtures/bad_lock_order.rs".into(),
        include_str!("fixtures/bad_lock_order.rs"),
    );
    let mut findings = Vec::new();
    lints::lock_order::check(&model, &cfg.lock, &mut findings);
    assert!(
        spans(&findings, "lock-order").is_empty(),
        "only shard is classified and its same-class nesting is allowlisted: {findings:#?}"
    );
}

#[test]
fn sim_time_fires_on_wall_clock_uses_with_spans() {
    let model = FileModel::new(
        "tests/fixtures/wall_clock.rs".into(),
        include_str!("fixtures/wall_clock.rs"),
    );
    let mut findings = Vec::new();
    lints::sim_time::check(&model, &SimTimeConfig { allow: vec![] }, &mut findings);
    // Line 4: SystemTime in the use list; 7: Instant::now; 12: SystemTime
    // return type; 13: SystemTime::now; 17: thread::sleep. The airlock
    // comparison code and the string/comment mentions stay quiet.
    assert_eq!(
        spans(&findings, "sim-time"),
        vec![4, 7, 12, 13, 17],
        "{findings:#?}"
    );
}

#[test]
fn counter_keys_fires_on_literals_not_consts_or_tests() {
    let cfg = fixture_config();
    let model = FileModel::new(
        "tests/fixtures/literal_keys.rs".into(),
        include_str!("fixtures/literal_keys.rs"),
    );
    let mut findings = Vec::new();
    lints::counter_keys::check(&model, &cfg.counter_keys, &mut findings);
    assert_eq!(
        spans(&findings, "counter-key"),
        vec![5, 6, 7],
        "{findings:#?}"
    );
    assert!(findings[0].msg.contains("vm.faults"));
}

#[test]
fn trace_cover_fires_on_uncharted_pub_entry_points() {
    let cfg = fixture_config();
    let model = FileModel::new(
        "tests/fixtures/uncovered_entry.rs".into(),
        include_str!("fixtures/uncovered_entry.rs"),
    );
    let mut findings = Vec::new();
    lints::trace_cover::check(&model, &cfg.trace, &mut findings);
    assert_eq!(spans(&findings, "trace-cover"), vec![5], "{findings:#?}");
    assert!(findings[0].msg.contains("pub fn send"));
}

#[test]
fn atomic_ordering_fires_on_unlisted_orderings_with_spans() {
    let cfg = fixture_config();
    let model = FileModel::new(
        "tests/fixtures/bad_ordering.rs".into(),
        include_str!("fixtures/bad_ordering.rs"),
    );
    let mut findings = Vec::new();
    lints::atomics::check(&model, &cfg.atomics, &mut findings);
    // 6: SeqCst store; 10: Release store; 22: brace import. The
    // allowlisted pair, cmp::Ordering, and test code stay quiet.
    assert_eq!(
        spans(&findings, "atomic-ordering"),
        vec![6, 10, 22],
        "{findings:#?}"
    );
    assert!(findings[0].msg.contains("SeqCst"));
    assert!(findings[2].msg.contains("brace-importing"));
}

#[test]
fn atomic_ordering_allowlist_covers_the_orderings() {
    let mut cfg = fixture_config();
    cfg.atomics.allow[0]
        .orderings
        .extend(["SeqCst".to_string(), "Release".to_string()]);
    let model = FileModel::new(
        "tests/fixtures/bad_ordering.rs".into(),
        include_str!("fixtures/bad_ordering.rs"),
    );
    let mut findings = Vec::new();
    lints::atomics::check(&model, &cfg.atomics, &mut findings);
    // Only the brace import is left: it hides use sites regardless of
    // how generous the allow set is.
    assert_eq!(
        spans(&findings, "atomic-ordering"),
        vec![22],
        "{findings:#?}"
    );
}

#[test]
fn condvar_wait_fires_on_if_guarded_waits_with_spans() {
    let cfg = fixture_config();
    let model = FileModel::new(
        "tests/fixtures/wait_in_if.rs".into(),
        include_str!("fixtures/wait_in_if.rs"),
    );
    let mut findings = Vec::new();
    lints::condvar_wait::check(&model, &cfg.condvar, &mut findings);
    // 8: wait under if; 15: wait_for under if. The while loop, the
    // match-arm-inside-loop, the allowlisted step, and test code stay
    // quiet.
    assert_eq!(
        spans(&findings, "condvar-wait"),
        vec![8, 15],
        "{findings:#?}"
    );
    assert!(findings[0].msg.contains("wait_under_if"));
}

#[test]
fn unchecked_send_fires_on_unjustified_discards_with_spans() {
    let cfg = fixture_config();
    let model = FileModel::new(
        "tests/fixtures/dropped_send.rs".into(),
        include_str!("fixtures/dropped_send.rs"),
    );
    let mut findings = Vec::new();
    lints::unchecked_send::check(&model, &cfg.send, &mut findings);
    // 6: send; 10: send_many. The allowlisted reply_to, the propagated
    // Result, the named binding, the unrelated discard, and test code
    // stay quiet.
    assert_eq!(
        spans(&findings, "unchecked-send"),
        vec![6, 10],
        "{findings:#?}"
    );
    assert!(findings[0].msg.contains("fire_and_forget"));
    assert!(findings[1].msg.contains("send_many"));
}

#[test]
fn trace_cover_allowlist_covers_the_entry() {
    let mut cfg = fixture_config();
    cfg.trace.allow.push(machlint::config::FnAllow {
        file: "tests/fixtures/uncovered_entry.rs".into(),
        function: "send".into(),
        reason: "fixture: delegated tracing".into(),
    });
    let model = FileModel::new(
        "tests/fixtures/uncovered_entry.rs".into(),
        include_str!("fixtures/uncovered_entry.rs"),
    );
    let mut findings = Vec::new();
    lints::trace_cover::check(&model, &cfg.trace, &mut findings);
    assert!(findings.is_empty(), "{findings:#?}");
}
