//! Integration: multi-host scenarios across the whole stack.

use machcore::{Kernel, KernelConfig, Task};
use machnet::Fabric;
use machpagers::{MigrationManager, MigrationStrategy, SharedMemoryServer};
use machsim::{CostModel, Topology};
use std::sync::Arc;
use std::time::Duration;

const PAGE: u64 = 4096;

#[test]
fn three_hosts_share_and_migrate() {
    // A shared memory region between two hosts, then a task migrates from
    // one of them to the other and keeps reading the shared region's
    // snapshot it carried along.
    let fabric = Fabric::new();
    let hs = fabric.add_host("server");
    let ha = fabric.add_host("alpha");
    let hb = fabric.add_host("beta");
    let ka = Kernel::boot_on(ha.machine().clone(), KernelConfig::default());
    let kb = Kernel::boot_on(hb.machine().clone(), KernelConfig::default());
    let ta = Task::create(&ka, "worker");
    let tb = Task::create(&kb, "peer");

    let shm = SharedMemoryServer::start(&fabric, &hs, 4 * PAGE);
    let aa = shm.attach(&ta, &ha).unwrap();
    let ab = shm.attach(&tb, &hb).unwrap();
    ta.write_memory(aa, b"state").unwrap();
    let deadline = machsim::wall::Deadline::after(Duration::from_secs(5));
    let mut buf = [0u8; 5];
    loop {
        tb.read_memory(ab, &mut buf).unwrap();
        if &buf == b"state" {
            break;
        }
        assert!(!deadline.expired());
        machsim::wall::sleep(Duration::from_millis(5));
    }

    // The worker also has private memory; migrate it to beta.
    let private = ta.vm_allocate(16 * PAGE).unwrap();
    for i in 0..16u64 {
        ta.write_memory(private + i * PAGE, &[i as u8 + 1]).unwrap();
    }
    let mm = MigrationManager::new(&fabric);
    let migrated = mm
        .migrate_region(
            &ta,
            &ha,
            private,
            16 * PAGE,
            &kb,
            &hb,
            MigrationStrategy::CopyOnReference { prefetch_pages: 0 },
        )
        .unwrap();
    let mut b = [0u8; 1];
    migrated
        .task
        .read_memory(migrated.report.address + 9 * PAGE, &mut b)
        .unwrap();
    assert_eq!(b[0], 10);
}

#[test]
fn kernels_run_on_every_topology() {
    for topo in Topology::ALL {
        let k = Kernel::boot(KernelConfig {
            cost: CostModel::for_topology(topo),
            ..KernelConfig::default()
        });
        let t = Task::create(&k, "probe");
        let addr = t.vm_allocate(2 * PAGE).unwrap();
        t.write_memory(addr, &[9]).unwrap();
        let mut b = [0u8; 1];
        t.read_memory(addr, &mut b).unwrap();
        assert_eq!(b[0], 9, "topology {topo}");
    }
}

#[test]
fn partition_heals_and_shared_memory_recovers() {
    let fabric = Fabric::new();
    let hs = fabric.add_host("server");
    let ha = fabric.add_host("alpha");
    let ka = Kernel::boot_on(ha.machine().clone(), KernelConfig::default());
    let ta = Task::create(&ka, "a");
    let shm = SharedMemoryServer::start(&fabric, &hs, 2 * PAGE);
    let aa = shm.attach(&ta, &ha).unwrap();
    // Keep faults single-page: the point of this test is that the second
    // page stays absent until the partition heals, so the warm read must
    // not cluster-prefetch it.
    ta.map().set_fault_policy(machvm::FaultPolicy::trusting());
    // Warm the page while connected.
    let mut b = [0u8; 1];
    ta.read_memory(aa, &mut b).unwrap();
    // Partition the client from the server; cached pages still readable.
    fabric.set_partitioned(ha.id(), hs.id(), true);
    ta.read_memory(aa, &mut b).unwrap();
    // A fault on a NEW page would hang (manager unreachable): use a
    // timeout policy to observe it as a memory failure, per §6.2.1.
    ta.map()
        .set_fault_policy(machvm::FaultPolicy::abort_after(Duration::from_millis(100)));
    let err = ta.read_memory(aa + PAGE, &mut b);
    assert_eq!(err.unwrap_err(), machvm::VmError::Timeout);
    // Heal the partition; the same fault now completes.
    fabric.set_partitioned(ha.id(), hs.id(), false);
    ta.map()
        .set_fault_policy(machvm::FaultPolicy::abort_after(Duration::from_secs(5)));
    ta.read_memory(aa + PAGE, &mut b).unwrap();
}

#[test]
fn remote_file_server_works_through_the_network_message_server() {
    // The Accent heritage (Section 2): a filesystem server on one host
    // serving clients on another, with the external pager protocol riding
    // the fabric both ways. The client maps the file; every page fault's
    // data_request and data_provided cross the network.
    use machpagers::FileServer;
    use machsim::stats::keys;
    let fabric = Fabric::new();
    let server_host = fabric.add_host("fileserver");
    let client_host = fabric.add_host("workstation");
    let server_kernel = Kernel::boot_on(server_host.machine().clone(), KernelConfig::default());
    let client_kernel = Kernel::boot_on(client_host.machine().clone(), KernelConfig::default());
    let _ = &server_kernel;

    let dev = Arc::new(machstorage::BlockDevice::new(server_host.machine(), 128));
    let fs = Arc::new(machstorage::FlatFs::format(dev, 0));
    let server = FileServer::start(server_host.machine(), fs);
    server.fs().create("shared.doc").unwrap();
    server
        .fs()
        .write("shared.doc", 0, &vec![0x42u8; 8192])
        .unwrap();

    // The client reaches the *service* port through one proxy, and the
    // memory object port from the reply through another, so both the RPC
    // and the pager protocol are honestly charged as network traffic.
    use machipc::{Message, MsgItem};
    let reply = fabric
        .rpc(
            &client_host,
            &server_host,
            server.port(),
            Message::new(machpagers::fs::FS_READ_FILE).with(MsgItem::bytes(b"shared.doc".to_vec())),
            Some(Duration::from_secs(10)),
        )
        .unwrap();
    assert_eq!(reply.id, machpagers::fs::FS_OK);
    let size = reply.body[0].as_u64s().unwrap()[0];
    assert_eq!(size, 8192);
    let machipc::MsgItem::SendRights(rights) = &reply.body[1] else {
        panic!("memory object expected");
    };
    let object_proxy = fabric.proxy(&client_host, &server_host, rights[0].clone());
    let task = Task::create(&client_kernel, "remote-reader");
    let net0 = client_host.machine().stats.get(keys::NET_BYTES);
    let addr = task
        .map_object_copy(None, size, object_proxy.port(), 0)
        .unwrap();
    let mut buf = vec![0u8; size as usize];
    task.read_memory(addr, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x42));
    assert!(
        client_host.machine().stats.get(keys::NET_BYTES) - net0 >= 8192,
        "page fills crossed the network"
    );
    // A second task on the same client host hits the local VM cache: no
    // further network traffic for the data.
    let net1 = client_host.machine().stats.get(keys::NET_BYTES);
    let task2 = Task::create(&client_kernel, "second-reader");
    let addr2 = task2
        .map_object_copy(None, size, object_proxy.port(), 0)
        .unwrap();
    task2.read_memory(addr2, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x42));
    let extra = client_host.machine().stats.get(keys::NET_BYTES) - net1;
    assert!(
        extra < 8192,
        "warm mapping moved {extra} bytes over the network"
    );
}

#[test]
fn norma_traffic_is_orders_of_magnitude_pricier_than_local() {
    // Compare simulated cost of a warm local access on a UMA host vs one
    // remote page fetch across the NORMA fabric.
    let fabric = Fabric::new();
    let hs = fabric.add_host("server");
    let ha = fabric.add_host("alpha");
    let ka = Kernel::boot_on(ha.machine().clone(), KernelConfig::default());
    let ta = Task::create(&ka, "a");
    let shm = SharedMemoryServer::start(&fabric, &hs, PAGE);
    let aa = shm.attach(&ta, &ha).unwrap();
    let t0 = ha.machine().clock.now_ns();
    let mut b = [0u8; 1];
    ta.read_memory(aa, &mut b).unwrap(); // Remote fetch.
    let remote_cost = ha.machine().clock.now_ns() - t0;
    let t1 = ha.machine().clock.now_ns();
    ta.read_memory(aa, &mut b).unwrap(); // Local warm access.
    let local_cost = ha.machine().clock.now_ns() - t1;
    assert!(
        remote_cost > 100 * local_cost.max(1),
        "remote {remote_cost} vs local {local_cost}"
    );
}
