//! The continuation-based asynchronous fault engine, end to end: a host
//! keeps thousands of faults outstanding against a slow external pager
//! with a handful of threads, a dying or silent pager errors its faults
//! back instead of wedging kernel service threads, and the causal trace
//! chain survives the park/resume hop.

use machcore::{spawn_manager, DataManager, Kernel, KernelConfig, KernelConn};
use machipc::OolBuffer;
use machsim::stats::keys;
use machsim::EventKind;
use machvm::{FaultPolicy, VmError, VmProt};
use std::time::Duration;

const PAGE: u64 = 4096;

/// Answers every `data_request` — a fixed wall delay after it arrives
/// (the manager thread serializes, so the delay also rate-limits the
/// drain, exactly like a busy disk queue).
struct SlowManager {
    delay: Duration,
}

impl DataManager for SlowManager {
    fn data_request(&mut self, k: &KernelConn, object: u64, offset: u64, length: u64, _a: VmProt) {
        machsim::wall::sleep(self.delay);
        k.data_provided(
            object,
            offset,
            OolBuffer::from_vec(vec![0x5A; length as usize]),
            VmProt::NONE,
        );
    }
}

/// Never answers anything.
struct BlackHolePager;

impl DataManager for BlackHolePager {
    fn data_request(&mut self, _k: &KernelConn, _object: u64, _offset: u64, _len: u64, _a: VmProt) {
    }
}

/// The tentpole scenario: thousands of faults in flight from one
/// submitting thread, all parked as continuations (no thread per fault),
/// all resolved by the slow pager, and the watchdog — which is running
/// the whole time — never flags a stall, because parked continuations
/// make progress events, not wedged threads.
#[test]
fn fault_storm_thousands_outstanding_all_resolve_zero_stalls() {
    const FAULTS: u64 = 2048;
    let kernel = Kernel::boot(KernelConfig {
        memory_bytes: 16 << 20, // room for every storm page at once
        fault_table_capacity: 4096,
        ..KernelConfig::default()
    });
    let mgr = spawn_manager(
        kernel.machine(),
        "slow",
        SlowManager {
            delay: Duration::from_micros(30),
        },
    );
    let object = kernel.object_for_port(mgr.port(), FAULTS * PAGE);
    let engine = kernel
        .fault_engine()
        .expect("async faults are on by default")
        .clone();

    let tickets: Vec<_> = (0..FAULTS)
        .map(|i| engine.submit(&object, i * PAGE, VmProt::READ, FaultPolicy::trusting()))
        .collect();
    for t in &tickets {
        t.wait().expect("every storm fault resolves");
    }

    let stats = &kernel.machine().stats;
    assert_eq!(
        stats.get(keys::WATCHDOG_STALLS),
        0,
        "a storm against a slow-but-live pager is not a stall"
    );
    assert!(
        engine.max_outstanding() > 64,
        "continuations parked far past any thread pool (saw {})",
        engine.max_outstanding()
    );
    assert!(
        stats.get(keys::VM_ASYNC_PARKS) >= FAULTS / 2,
        "the storm really went through the park path"
    );
    assert_eq!(
        kernel.phys().frame_census().pending,
        0,
        "no fill window outlives its fault"
    );
}

/// The backpressure regression: a storm submitting more faults than the
/// table's budget must never park past the budget — the old
/// `conts.len()`-based admission gate let woken-but-mid-step faults free
/// their table slot while still holding their claim, so `max_outstanding`
/// crept to budget+1 and beyond (BENCH_fault.json recorded 1025/4097
/// against budgets of 1024/4096).
#[test]
fn storm_past_the_budget_never_exceeds_it() {
    const BUDGET: usize = 256;
    const FAULTS: u64 = 1024; // 4x the budget: backpressure must engage.
    let kernel = Kernel::boot(KernelConfig {
        memory_bytes: 16 << 20,
        fault_table_capacity: BUDGET,
        ..KernelConfig::default()
    });
    let mgr = spawn_manager(
        kernel.machine(),
        "slow",
        SlowManager {
            delay: Duration::from_micros(50),
        },
    );
    let object = kernel.object_for_port(mgr.port(), FAULTS * PAGE);
    let engine = kernel
        .fault_engine()
        .expect("async faults are on by default")
        .clone();

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let engine = engine.clone();
            let object = object.clone();
            s.spawn(move || {
                let per = FAULTS / 4;
                let tickets: Vec<_> = (0..per)
                    .map(|i| {
                        engine.submit(
                            &object,
                            (t * per + i) * PAGE,
                            VmProt::READ,
                            FaultPolicy::trusting(),
                        )
                    })
                    .collect();
                for ticket in tickets {
                    ticket.wait().expect("slow pager answers every fault");
                }
            });
        }
    });

    let stats = &kernel.machine().stats;
    assert!(
        stats.get(keys::VM_ASYNC_BACKPRESSURE) > 0,
        "a 4x-budget storm must actually hit the admission gate"
    );
    assert!(
        engine.max_outstanding() <= BUDGET,
        "max outstanding {} exceeded the budget {BUDGET}",
        engine.max_outstanding()
    );
}

/// A silent pager cannot wedge anything: the continuation's policy
/// deadline fires in the completion loop, the fault errors back to its
/// submitter promptly, and a *cleanly* timed-out fault is not a watchdog
/// stall (its flight chain ended by policy, not by wedging).
#[test]
fn silent_pager_times_out_cleanly_without_watchdog_stall() {
    let kernel = Kernel::boot(KernelConfig::default());
    let mgr = spawn_manager(kernel.machine(), "blackhole", BlackHolePager);
    let object = kernel.object_for_port(mgr.port(), 4 * PAGE);
    let engine = kernel
        .fault_engine()
        .expect("async faults on by default")
        .clone();

    let policy = FaultPolicy {
        pager_timeout: Some(Duration::from_millis(40)),
        ..FaultPolicy::default() // on_timeout: Fail
    };
    let started = machsim::wall::now();
    let ticket = engine.submit(&object, 0, VmProt::READ, policy);
    let err = ticket.wait().expect_err("silent pager must time out");
    assert!(matches!(err, VmError::Timeout), "got {err:?}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the timeout fired from the completion loop, nothing wedged"
    );

    let stats = &kernel.machine().stats;
    assert!(stats.get(keys::VM_ASYNC_TIMEOUTS) >= 1);
    assert_eq!(
        stats.get(keys::WATCHDOG_STALLS),
        0,
        "a policy timeout is a clean completion, not a stall"
    );
    assert_eq!(
        kernel.phys().frame_census().pending,
        0,
        "the timed-out fault's claimed fill window was cancelled"
    );
}

/// Pager death mid-continuation: faults parked against a manager whose
/// port dies error out with `ObjectDestroyed`, and the resident table is
/// left clean — no leaked pins, no stranded pending fills.
#[test]
fn pager_death_mid_continuation_errors_faults_and_leaks_nothing() {
    const FAULTS: u64 = 32;
    let kernel = Kernel::boot(KernelConfig::default());
    let mgr = spawn_manager(kernel.machine(), "blackhole", BlackHolePager);
    let object = kernel.object_for_port(mgr.port(), FAULTS * PAGE);
    let engine = kernel
        .fault_engine()
        .expect("async faults on by default")
        .clone();

    // Trusting policy: no deadline — only death detection can free these.
    let tickets: Vec<_> = (0..FAULTS)
        .map(|i| engine.submit(&object, i * PAGE, VmProt::READ, FaultPolicy::trusting()))
        .collect();
    assert!(
        tickets.iter().all(|t| !t.is_done()),
        "all faults are parked continuations before the pager dies"
    );

    // Kill the manager: its thread exits and the memory-object port dies.
    mgr.shutdown();

    for t in &tickets {
        let err = t.wait().expect_err("fault against a dead pager errors");
        assert!(matches!(err, VmError::ObjectDestroyed), "got {err:?}");
    }

    let stats = &kernel.machine().stats;
    assert!(stats.get(keys::VM_ASYNC_PAGER_DEAD) >= 1);
    let census = kernel.phys().frame_census();
    assert_eq!(census.pending, 0, "no stranded fill windows: {census:?}");
    assert_eq!(census.pinned, 0, "no leaked pins: {census:?}");
}

/// The causal chain survives the continuation hop: the fault's
/// correlation id is visible on the submit-side `Fault` event, on the
/// manager-side `DataRequest` (stamped through the *batched* request
/// message), and on the completion-loop `Resume` — one chain, three
/// threads, no thread-local scope in common.
#[test]
fn correlation_id_survives_park_and_resume() {
    let kernel = Kernel::boot(KernelConfig::default());
    let mgr = spawn_manager(
        kernel.machine(),
        "slow",
        SlowManager {
            delay: Duration::from_millis(5),
        },
    );
    let object = kernel.object_for_port(mgr.port(), 4 * PAGE);
    let engine = kernel
        .fault_engine()
        .expect("async faults on by default")
        .clone();

    let ticket = engine.submit(&object, 0, VmProt::READ, FaultPolicy::trusting());
    let cid = ticket.correlation();
    ticket.wait().expect("slow pager answers");
    assert!(
        kernel.machine().stats.get(keys::VM_ASYNC_PARKS) >= 1,
        "the fault really parked (otherwise this test proves nothing)"
    );

    let events = kernel.machine().trace.snapshot();
    let chain: Vec<_> = events
        .iter()
        .filter(|e| e.correlation_id == Some(cid))
        .collect();
    assert!(
        chain.iter().any(|e| e.kind == EventKind::Fault),
        "submit-side fault event carries the cid"
    );
    assert!(
        chain.iter().any(|e| e.kind == EventKind::DataRequest),
        "the batched pager_data_request preserved the cid across the IPC hop"
    );
    assert!(
        chain.iter().any(|e| e.kind == EventKind::Resume),
        "the completion loop's resolution rejoined the chain"
    );
}
