//! Integration: NUMA memory placement — first-touch allocation, read
//! replication with write shootdown, hot-page migration — exercised both
//! against the raw VM layer and through a booted kernel.

use machcore::{spawn_manager, DataManager, Kernel, KernelConfig, KernelConn, Task};
use machipc::OolBuffer;
use machsim::stats::keys;
use machsim::{CostModel, Machine, SplitMix64, Topology};
use machvm::numa::set_current_node;
use machvm::{NumaConfig, PhysicalMemory, VmMap, VmProt};
use std::sync::Arc;

const PAGE: u64 = 4096;
const NODES: usize = 4;

fn numa_map(numa: NumaConfig, frames: usize) -> (Machine, Arc<PhysicalMemory>, Arc<VmMap>) {
    let m = Machine::with_topology(Topology::Numa);
    let phys = PhysicalMemory::new_numa(&m, frames * PAGE as usize, PAGE as usize, 8, numa);
    let map = VmMap::new(&phys);
    (m, phys, map)
}

#[test]
fn first_touch_places_pages_on_faulting_node() {
    let (_m, phys, map) = numa_map(NumaConfig::nodes(NODES).with_first_touch(), 256);
    let base = map.allocate(None, 8 * PAGE).unwrap();
    for node in 0..NODES {
        set_current_node(Some(node));
        let frame = map.fault(base + node as u64 * PAGE, VmProt::WRITE).unwrap();
        assert_eq!(
            phys.frame_node(frame),
            node,
            "first touch from node {node} landed elsewhere"
        );
    }
    set_current_node(None);
}

#[test]
fn without_first_touch_placement_round_robins() {
    let (_m, phys, map) = numa_map(NumaConfig::nodes(NODES), 256);
    let base = map.allocate(None, 8 * PAGE).unwrap();
    set_current_node(Some(2));
    for i in 0..NODES {
        let frame = map.fault(base + i as u64 * PAGE, VmProt::WRITE).unwrap();
        assert_eq!(
            phys.frame_node(frame),
            i,
            "placement-blind striping should ignore the faulting node"
        );
    }
    set_current_node(None);
}

#[test]
fn replication_then_shootdown_preserves_read_your_writes() {
    let (m, _phys, map) = numa_map(
        NumaConfig::nodes(NODES)
            .with_first_touch()
            .with_replication(),
        256,
    );
    let base = map.allocate(None, 2 * PAGE).unwrap();
    let mut buf = vec![0u8; PAGE as usize];

    // Node 0 first-touches the region...
    set_current_node(Some(0));
    map.access_write(base, &vec![0xAA; PAGE as usize]).unwrap();

    // ...and the other nodes read it past the hot threshold, growing
    // per-node replicas.
    for _ in 0..8 {
        for node in 1..NODES {
            set_current_node(Some(node));
            map.access_read(base, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0xAA));
        }
    }
    assert!(
        m.stats.get(keys::NUMA_REPLICATIONS) >= (NODES - 1) as u64,
        "read-hot page should have replicated to every remote node"
    );

    // Once replicated, remote reads are served locally.
    let local_before = m.stats.get(keys::NUMA_LOCAL_HITS);
    set_current_node(Some(1));
    map.access_read(base, &mut buf).unwrap();
    assert!(
        m.stats.get(keys::NUMA_LOCAL_HITS) > local_before,
        "replicated read should count as a local hit"
    );

    // The home node writes again: every replica must be shot down and the
    // new bytes must be what every other node reads next.
    set_current_node(Some(0));
    map.access_write(base, &vec![0xBB; PAGE as usize]).unwrap();
    assert!(
        m.stats.get(keys::NUMA_SHOOTDOWNS) >= 1,
        "write to a replicated page must shoot replicas down"
    );
    for node in 1..NODES {
        set_current_node(Some(node));
        map.access_read(base, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == 0xBB),
            "node {node} read stale bytes after shootdown"
        );
    }
    set_current_node(None);
}

#[test]
fn write_hot_page_migrates_to_its_writer() {
    let (m, phys, map) = numa_map(NumaConfig::all_policies(NODES), 256);
    let base = map.allocate(None, PAGE).unwrap();

    set_current_node(Some(0));
    map.access_write(base, &vec![1; PAGE as usize]).unwrap();
    assert_eq!(phys.frame_node(map.fault(base, VmProt::READ).unwrap()), 0);

    // Node 3 becomes the dominant writer; the page should chase it.
    set_current_node(Some(3));
    for i in 0..8u8 {
        map.access_write(base, &vec![i | 1; PAGE as usize]).unwrap();
    }
    assert!(
        m.stats.get(keys::NUMA_MIGRATIONS) >= 1,
        "page never migrated"
    );
    assert_eq!(
        phys.frame_node(map.fault(base, VmProt::READ).unwrap()),
        3,
        "write-hot page should live on its dominant writer's node"
    );

    // The migrated copy carries the data.
    let mut buf = vec![0u8; PAGE as usize];
    map.access_read(base, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 7 | 1));
    set_current_node(None);
}

#[test]
fn multithreaded_numa_stress_keeps_data_coherent() {
    // Eight threads role-playing four nodes hammer three regions at once:
    // a read-hot shared region whose pages a writer keeps republishing
    // (replication + shootdown races), a per-thread private region
    // (first-touch), and a hot region where each thread writes one page
    // first touched elsewhere (migration). Every read checks its bytes;
    // the physical layer's invariants must hold afterwards.
    let (m, phys, map) = numa_map(NumaConfig::all_policies(NODES), 1024);
    let shared_pages = 8u64;
    let shared = map.allocate(None, shared_pages * PAGE).unwrap();
    let hot = map.allocate(None, 8 * PAGE).unwrap();
    set_current_node(Some(0));
    for p in 0..shared_pages {
        map.access_write(shared + p * PAGE, &vec![1; PAGE as usize])
            .unwrap();
    }
    for p in 0..8 {
        map.access_write(hot + p * PAGE, &vec![1; PAGE as usize])
            .unwrap();
    }
    set_current_node(None);

    let threads = 8usize;
    let privates: Vec<u64> = (0..threads)
        .map(|_| map.allocate(None, 4 * PAGE).unwrap())
        .collect();
    std::thread::scope(|s| {
        for (t, &private) in privates.iter().enumerate() {
            let map = map.clone();
            s.spawn(move || {
                set_current_node(Some(t % NODES));
                let mut rng = SplitMix64::new(t as u64 + 1);
                let mut buf = vec![0u8; PAGE as usize];
                for round in 0..60u32 {
                    // Shared region: pages are rewritten whole, so any
                    // read must see a uniform page.
                    let p = rng.next_below(shared_pages);
                    if t == 0 && round % 8 == 0 {
                        let v = (round / 8 + 2) as u8;
                        map.access_write(shared + p * PAGE, &vec![v; PAGE as usize])
                            .unwrap();
                    } else {
                        map.access_read(shared + p * PAGE, &mut buf).unwrap();
                        assert!(
                            buf.windows(2).all(|w| w[0] == w[1]),
                            "torn shared page {p} in thread {t}"
                        );
                    }
                    // Private region: strict read-your-writes.
                    let q = rng.next_below(4);
                    let tag = (t as u8) << 4 | (q as u8 + 1);
                    map.access_write(private + q * PAGE, &vec![tag; PAGE as usize])
                        .unwrap();
                    map.access_read(private + q * PAGE, &mut buf).unwrap();
                    assert!(
                        buf.iter().all(|&b| b == tag),
                        "private page lost thread {t}'s write"
                    );
                    // Hot region: each thread owns one page, first touched
                    // by node 0, so it migrates mid-stress.
                    let tag = t as u8 + 100;
                    map.access_write(hot + t as u64 * PAGE, &vec![tag; PAGE as usize])
                        .unwrap();
                    map.access_read(hot + t as u64 * PAGE, &mut buf).unwrap();
                    assert!(buf.iter().all(|&b| b == tag));
                }
            });
        }
    });
    phys.check_invariants();
    assert!(m.stats.get(keys::NUMA_REPLICATIONS) > 0);
    assert!(m.stats.get(keys::NUMA_SHOOTDOWNS) > 0);
    // Under `--features lockdep` the storm doubles as a model check of the
    // lock hierarchy: any forbidden nesting panics, and the witness must
    // have order-checked real nested traffic.
    #[cfg(feature = "lockdep")]
    assert!(
        machvm::lockdep::nested_acquisitions() > 0,
        "lockdep witness saw no nested acquisitions in the NUMA stress"
    );
}

struct OffsetPager;

impl DataManager for OffsetPager {
    fn data_request(&mut self, k: &KernelConn, object: u64, offset: u64, length: u64, _a: VmProt) {
        let data: Vec<u8> = (offset..offset + length)
            .map(|i| (i / PAGE) as u8)
            .collect();
        k.data_provided(object, offset, OolBuffer::from_vec(data), VmProt::NONE);
    }
}

#[test]
fn kernel_numa_stress_has_zero_watchdog_stalls() {
    // A full kernel boot on the NUMA cost model with all placement
    // policies on: four tasks (spread round-robin across nodes) fault a
    // pager-backed object and scribble over anonymous memory from
    // concurrent threads. Data stays correct, placement counters move,
    // and the stall watchdog never fires.
    let kernel = Kernel::boot(KernelConfig {
        memory_bytes: 64 << 20,
        cost: CostModel::numa(),
        numa: NumaConfig::all_policies(NODES),
        ..KernelConfig::default()
    });
    let mgr = spawn_manager(kernel.machine(), "offsets", OffsetPager);
    let pages = 32u64;
    let tasks: Vec<Arc<Task>> = (0..NODES)
        .map(|i| Task::create(&kernel, &format!("numa{i}")))
        .collect();
    std::thread::scope(|s| {
        for (t, task) in tasks.iter().enumerate() {
            let task = task.clone();
            let port = mgr.port();
            s.spawn(move || {
                let paged = task
                    .vm_allocate_with_pager(None, pages * PAGE, port, 0)
                    .unwrap();
                let anon = task.vm_allocate(pages * PAGE).unwrap();
                let mut rng = SplitMix64::new(t as u64 + 7);
                for _ in 0..200 {
                    let p = rng.next_below(pages);
                    let mut b = [0u8; 1];
                    task.read_memory(paged + p * PAGE, &mut b).unwrap();
                    assert_eq!(b[0], p as u8, "task {t}, pager page {p}");
                    task.write_memory(anon + p * PAGE, &[t as u8, p as u8])
                        .unwrap();
                    let mut b = [0u8; 2];
                    task.read_memory(anon + p * PAGE, &mut b).unwrap();
                    assert_eq!(b, [t as u8, p as u8]);
                }
            });
        }
    });
    let stats = &kernel.machine().stats;
    assert!(
        stats.get(keys::NUMA_LOCAL_HITS) > 0,
        "NUMA accounting never engaged"
    );
    assert_eq!(
        stats.get(keys::WATCHDOG_STALLS),
        0,
        "healthy NUMA run flagged by the stall watchdog"
    );
}
