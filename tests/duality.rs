//! Integration: both directions of the memory/communication duality.
//!
//! Memory implemented with communication: a page fault becomes a message
//! to a user-level data manager and the data comes back in a message.
//! Communication implemented with memory: a large message body moves as a
//! copy-on-write mapping instead of bytes. This test exercises both on one
//! kernel, across crate boundaries, with real threads on both sides.

use machcore::{msg, spawn_manager, DataManager, Kernel, KernelConfig, KernelConn, Task};
use machipc::{OolBuffer, ReceiveRight};
use machsim::stats::keys;
use machvm::VmProt;
use std::sync::Arc;

struct OffsetPager;

impl DataManager for OffsetPager {
    fn data_request(&mut self, k: &KernelConn, object: u64, offset: u64, length: u64, _a: VmProt) {
        let data: Vec<u8> = (offset..offset + length)
            .map(|i| (i / 4096) as u8)
            .collect();
        k.data_provided(object, offset, OolBuffer::from_vec(data), VmProt::NONE);
    }
}

#[test]
fn memory_is_communication_and_back() {
    let kernel = Kernel::boot(KernelConfig::default());

    // Direction 1: memory via messages. Map an external object and fault.
    let consumer = Task::create(&kernel, "consumer");
    let mgr = spawn_manager(kernel.machine(), "offsets", OffsetPager);
    let mapped = consumer
        .vm_allocate_with_pager(None, 8 * 4096, mgr.port(), 0)
        .unwrap();
    let msgs_before = kernel.machine().stats.get(keys::MSG_SENT);
    let mut b = [0u8; 1];
    consumer.read_memory(mapped + 5 * 4096, &mut b).unwrap();
    assert_eq!(b[0], 5);
    assert!(
        kernel.machine().stats.get(keys::MSG_SENT) > msgs_before,
        "the fault traveled as messages"
    );

    // Direction 2: messages via memory. Send the mapped region onward in
    // a message as an out-of-line COW region.
    let second = Task::create(&kernel, "second");
    let (rx, tx) = ReceiveRight::allocate(kernel.machine());
    let copied_before = kernel.machine().stats.get(keys::BYTES_COPIED);
    msg::send_region(&consumer, &tx, 42, mapped, 8 * 4096, None).unwrap();
    let mut m = rx.receive(None).unwrap();
    let raddr = msg::map_received_region(&second, &mut m).unwrap();
    let transfer_copied = kernel.machine().stats.get(keys::BYTES_COPIED) - copied_before;
    assert!(transfer_copied < 4096, "transfer moved pages by mapping");
    // The receiver's view is correct; untouched pages even fault through
    // to the original external pager (the chain composes).
    second.read_memory(raddr + 5 * 4096, &mut b).unwrap();
    assert_eq!(b[0], 5);
    second.read_memory(raddr + 7 * 4096, &mut b).unwrap();
    assert_eq!(b[0], 7, "receiver faulted a page the sender never touched");
}

#[test]
fn shared_cache_means_one_message_per_page_total() {
    // N tasks mapping the same object pay the pager at most once per page
    // — here exactly one clustered request for the whole 8-page object —
    // no matter how many of them read it.
    let kernel = Kernel::boot(KernelConfig::default());
    let mgr = spawn_manager(kernel.machine(), "offsets", OffsetPager);
    let pages = 8u64;
    let mut tasks = Vec::new();
    for i in 0..4 {
        let t = Task::create(&kernel, &format!("t{i}"));
        let addr = t
            .vm_allocate_with_pager(None, pages * 4096, mgr.port(), 0)
            .unwrap();
        tasks.push((t, addr));
    }
    for (t, addr) in &tasks {
        for p in 0..pages {
            let mut b = [0u8; 1];
            t.read_memory(addr + p * 4096, &mut b).unwrap();
            assert_eq!(b[0], p as u8);
        }
    }
    let fills = kernel.machine().stats.get(keys::VM_PAGER_FILLS);
    assert!(
        fills <= pages.div_ceil(machcore::DEFAULT_CLUSTER_PAGES as u64),
        "cluster paging collapses the per-page requests (got {fills})"
    );
}

#[test]
fn inheritance_and_external_objects_compose() {
    // Fork a task that has an external mapping with Copy inheritance: the
    // child gets a COW view backed ultimately by the pager.
    let kernel = Kernel::boot(KernelConfig::default());
    let mgr = spawn_manager(kernel.machine(), "offsets", OffsetPager);
    let parent = Task::create(&kernel, "parent");
    let addr = parent
        .vm_allocate_with_pager(None, 4 * 4096, mgr.port(), 0)
        .unwrap();
    parent.write_memory(addr, &[0xAA]).unwrap();
    let child = parent.fork("child");
    // Child sees the parent's write (snapshot), then diverges.
    let mut b = [0u8; 1];
    child.read_memory(addr, &mut b).unwrap();
    assert_eq!(b[0], 0xAA);
    child.write_memory(addr, &[0xBB]).unwrap();
    parent.read_memory(addr, &mut b).unwrap();
    assert_eq!(b[0], 0xAA);
    // An untouched page still faults through to the pager for the child.
    child.read_memory(addr + 3 * 4096, &mut b).unwrap();
    assert_eq!(b[0], 3);
}

#[test]
fn whole_address_space_can_travel_in_one_message() {
    // "A single message may transfer up to the entire address space of a
    // task."
    let kernel = Kernel::boot(KernelConfig {
        memory_bytes: 32 << 20,
        ..KernelConfig::default()
    });
    let sender = Task::create(&kernel, "sender");
    let receiver = Task::create(&kernel, "receiver");
    // Several regions; send them all in one message.
    let a = sender.vm_allocate(4 * 4096).unwrap();
    let b_addr = sender.vm_allocate(4 * 4096).unwrap();
    sender.write_memory(a, b"region A").unwrap();
    sender.write_memory(b_addr, b"region B").unwrap();
    let (rx, tx) = ReceiveRight::allocate(kernel.machine());
    let item_a = msg::region_item(&sender, a, 4 * 4096).unwrap();
    let item_b = msg::region_item(&sender, b_addr, 4 * 4096).unwrap();
    tx.send(machipc::Message::new(1).with(item_a).with(item_b), None)
        .unwrap();
    let mut m = rx.receive(None).unwrap();
    // Map the first region; then remove it from the body and map the next.
    let ra = msg::map_received_region(&receiver, &mut m).unwrap();
    m.body.remove(0);
    let rb = msg::map_received_region(&receiver, &mut m).unwrap();
    let mut buf = [0u8; 8];
    receiver.read_memory(ra, &mut buf).unwrap();
    assert_eq!(&buf, b"region A");
    receiver.read_memory(rb, &mut buf).unwrap();
    assert_eq!(&buf, b"region B");
}

#[test]
fn eviction_and_refault_through_default_pager_preserves_data() {
    // Anonymous data squeezed out of a tiny memory and pulled back — the
    // full default-pager loop under pressure, across all crates.
    let kernel = Kernel::boot(KernelConfig {
        memory_bytes: 12 * 4096,
        reserve_pages: 4,
        ..KernelConfig::default()
    });
    let t = Task::create(&kernel, "squeezed");
    let pages = 64u64;
    let addr = t.vm_allocate(pages * 4096).unwrap();
    for i in 0..pages {
        t.write_memory(addr + i * 4096, &[(i % 251) as u8]).unwrap();
    }
    let mut rng = machsim::SplitMix64::new(7);
    let mut order: Vec<u64> = (0..pages).collect();
    rng.shuffle(&mut order);
    for &i in &order {
        let mut b = [0u8; 1];
        t.read_memory(addr + i * 4096, &mut b).unwrap();
        assert_eq!(b[0], (i % 251) as u8, "page {i} preserved");
    }
    assert!(kernel.machine().stats.get(keys::VM_PAGEOUTS) > 0);
    let _ = Arc::strong_count(&t);
}
