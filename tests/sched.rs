//! Integration: the multiprocessor scheduler — census-style unit
//! accounting under an 8-CPU steal storm, NUMA-affine placement keeping
//! a single-node workload free of remote hits, and a kernel-booted
//! parallel compile run with a quiet stall watchdog.

use machcore::{Kernel, KernelConfig, Task};
use machpagers::{FileServer, FsClient};
use machsched::{Run, SchedConfig, Scheduler, TaskTag};
use machsim::stats::keys;
use machsim::{CostModel, Machine, Topology};
use machstorage::{BlockDevice, FlatFs};
use machunix::{CompileWorkload, MachUnix, UnixIo};
use machvm::numa::set_current_node;
use machvm::{NumaConfig, PhysicalMemory, VmMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const PAGE: u64 = 4096;

#[test]
fn steal_storm_loses_and_duplicates_nothing() {
    // Census invariant: 2000 units piled onto one CPU's queue (submitted
    // from inside a worker) and spread over 8 CPUs purely by stealing;
    // every unit must run exactly once.
    const UNITS: usize = 2000;
    let m = Machine::new(CostModel::default());
    let sched = Scheduler::start(
        &m,
        SchedConfig {
            cpus: 8,
            ..SchedConfig::default()
        },
    );
    let runs: Arc<Vec<AtomicUsize>> = Arc::new((0..UNITS).map(|_| AtomicUsize::new(0)).collect());
    let handles = Arc::new(Mutex::new(Vec::new()));
    let (s, r, hs, mach) = (
        Arc::clone(&sched),
        Arc::clone(&runs),
        Arc::clone(&handles),
        m.clone(),
    );
    sched
        .spawn(0, move || {
            for i in 0..UNITS {
                let (r, mach) = (Arc::clone(&r), mach.clone());
                hs.lock().expect("handle list poisoned").push(s.submit(
                    TaskTag::new(0),
                    move || {
                        // Enough simulated work that thieves find the pile.
                        mach.clock.charge(20_000);
                        r[i].fetch_add(1, Ordering::Relaxed);
                        Run::Done
                    },
                ));
            }
        })
        .join();
    for h in handles.lock().expect("handle list poisoned").drain(..) {
        h.join();
    }
    for (i, slot) in runs.iter().enumerate() {
        assert_eq!(
            slot.load(Ordering::Relaxed),
            1,
            "unit {i} ran a wrong number of times"
        );
    }
    // No unit yields, so dispatches must equal submissions exactly
    // (census of the make unit plus its children), and the pile must
    // have spread by theft.
    assert_eq!(m.stats.get(keys::SCHED_DISPATCHES), UNITS as u64 + 1);
    assert!(m.stats.get(keys::SCHED_STEALS) > 0, "no steal traffic");
    sched.shutdown();
}

#[test]
fn affine_placement_keeps_single_node_workload_local() {
    // Two-node machine, every unit homed on node 0, stealing off so the
    // placer's node preference is what's under test. A writer unit
    // first-touches the pages, reader units then walk them; if placement
    // respected the home node, every access is node-local.
    let m = Machine::with_topology(Topology::Numa);
    let phys = PhysicalMemory::new_numa(
        &m,
        256 * PAGE as usize,
        PAGE as usize,
        8,
        NumaConfig::nodes(2).with_first_touch(),
    );
    let map = VmMap::new(&phys);
    let base = map.allocate(None, 32 * PAGE).expect("allocate test region");
    let sched = Scheduler::start(
        &m,
        SchedConfig {
            cpus: 4,
            nodes: 2,
            steal: false,
            pin_node: Some(|node| set_current_node(Some(node))),
            ..SchedConfig::default()
        },
    );
    let w = Arc::clone(&map);
    sched
        .submit(TaskTag::new(0), move || {
            for p in 0..32u64 {
                w.access_write(base + p * PAGE, &[p as u8; 64])
                    .expect("first touch");
            }
            Run::Done
        })
        .join();
    let readers: Vec<machsched::JoinHandle> = (0..4)
        .map(|_| {
            let r = Arc::clone(&map);
            sched.submit(TaskTag::new(0), move || {
                for p in 0..32u64 {
                    let mut got = [0u8; 64];
                    r.access_read(base + p * PAGE, &mut got).expect("warm read");
                    assert_eq!(got, [p as u8; 64]);
                }
                Run::Done
            })
        })
        .collect();
    for h in readers {
        h.join();
    }
    assert!(
        m.stats.get(keys::NUMA_LOCAL_HITS) > 0,
        "NUMA accounting never engaged"
    );
    assert_eq!(
        m.stats.get(keys::NUMA_REMOTE_HITS),
        0,
        "single-node workload crossed nodes"
    );
    sched.shutdown();
}

#[test]
fn kernel_booted_parallel_compile_has_zero_watchdog_stalls() {
    // The macro-workload in miniature, through the real boot path:
    // task threads go through the kernel scheduler, their I/O through
    // the mapped-file emulation and the fault engine, and the stall
    // watchdog must stay quiet.
    let kernel = Kernel::boot(KernelConfig {
        memory_bytes: 8 << 20,
        sched_cpus: 8,
        ..KernelConfig::default()
    });
    let dev = Arc::new(BlockDevice::new(kernel.machine(), 4096));
    let fs = Arc::new(FlatFs::format(dev, 0));
    let server = FileServer::start(kernel.machine(), fs);
    let task = Task::create(&kernel, "make");
    let unix = Arc::new(MachUnix::new(&task, FsClient::new(server.port().clone())));
    let w = CompileWorkload {
        source_files: 8,
        headers: 4,
        ..CompileWorkload::default()
    };
    w.populate(unix.as_ref()).expect("populate project");
    let machine = kernel.machine().clone();
    for unit in 0..w.source_files {
        let (w, unix, machine) = (w.clone(), Arc::clone(&unix), machine.clone());
        task.spawn(&format!("cc{unit}"), move |_t| {
            w.compile_unit(unix.as_ref(), &machine, unit)
                .expect("compile unit");
        });
    }
    task.join_threads();
    unix.sync_all().expect("sync objects");
    let stats = &kernel.machine().stats;
    assert!(
        stats.get(keys::SCHED_DISPATCHES) >= w.source_files as u64,
        "compile threads never went through the scheduler"
    );
    assert_eq!(
        stats.get(keys::WATCHDOG_STALLS),
        0,
        "healthy parallel build flagged by the stall watchdog"
    );
}
