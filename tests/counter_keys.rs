//! Counter-key drift is now prevented statically: machlint's L3 lint
//! forbids string-literal keys at registry call sites, so every
//! production counter must flow through a `stats::keys` const. What
//! remains here is the one regression test tying the two worlds
//! together: the const table machlint reads out of the keys file must
//! be exactly the `keys::ALL` table the exporters and the introspection
//! protocol serve. If they ever disagree, a key exists that one half of
//! the tooling cannot see.

use machsim::stats::keys;
use std::collections::BTreeSet;
use std::path::Path;

#[test]
fn machlint_and_keys_all_agree_on_the_canonical_key_set() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cfg_src = std::fs::read_to_string(root.join("machlint.toml"))
        .expect("machlint.toml exists at the workspace root");
    let cfg = machlint::config::Config::from_doc(
        &machlint::toml::parse(&cfg_src).expect("machlint.toml parses"),
    )
    .expect("machlint.toml is a valid config");

    let keys_src = std::fs::read_to_string(root.join(&cfg.counter_keys.keys_file))
        .expect("the configured keys_file exists");
    let extracted: BTreeSet<String> = machlint::extract_key_consts(&keys_src)
        .into_iter()
        .map(|(_name, value)| value)
        .collect();
    assert!(
        !extracted.is_empty(),
        "machlint found no key consts in {} — the extractor or the keys \
         module changed shape",
        cfg.counter_keys.keys_file
    );

    let declared: BTreeSet<String> = keys::ALL.iter().map(|k| k.to_string()).collect();
    assert_eq!(
        declared.len(),
        keys::ALL.len(),
        "duplicate key in keys::ALL"
    );
    assert_eq!(
        extracted, declared,
        "machlint's view of the key consts and stats::keys::ALL disagree; \
         a key was added to one without the other"
    );
}
