//! Counter-name drift audit: every counter a real workload produces must
//! be declared in `machsim::stats::keys::ALL`, so exporters, dashboards
//! and the introspection protocol never silently miss a renamed key.

use machcore::{spawn_manager, DataManager, Kernel, KernelConfig, KernelConn, Task};
use machipc::OolBuffer;
use machnet::Fabric;
use machsim::stats::keys;
use machvm::VmProt;

const PAGE: u64 = 4096;

struct StampPager;

impl DataManager for StampPager {
    fn data_request(&mut self, k: &KernelConn, object: u64, offset: u64, length: u64, _a: VmProt) {
        let data: Vec<u8> = (offset..offset + length)
            .map(|i| (i / PAGE) as u8)
            .collect();
        k.data_provided(object, offset, OolBuffer::from_vec(data), VmProt::NONE);
    }
}

#[test]
fn all_is_free_of_duplicates() {
    let mut sorted: Vec<&str> = keys::ALL.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), keys::ALL.len(), "duplicate key in keys::ALL");
}

#[test]
fn every_live_counter_is_a_declared_key() {
    // A workload broad enough to touch every subsystem that counts:
    // external paging, copy-on-write forks under memory pressure (pageout,
    // default pager), and cross-host messaging.
    let fabric = Fabric::new();
    let ha = fabric.add_host("a");
    let hb = fabric.add_host("b");
    let kernel = Kernel::boot_on(
        ha.machine().clone(),
        KernelConfig {
            memory_bytes: 24 * 4096,
            reserve_pages: 4,
            ..KernelConfig::default()
        },
    );
    let kernel_b = Kernel::boot_on(hb.machine().clone(), KernelConfig::default());

    let task = Task::create(&kernel, "audit");
    let mgr = spawn_manager(kernel.machine(), "stamp", StampPager);
    let pages = 16u64;
    let addr = task
        .vm_allocate_with_pager(None, pages * PAGE, mgr.port(), 0)
        .unwrap();
    let mut b = [0u8; 1];
    for p in 0..pages {
        task.read_memory(addr + p * PAGE, &mut b).unwrap();
    }
    // Fork + writes: copy-on-write, shadow chains, pressure, pageout.
    let child = task.fork("audit-child");
    for p in 0..pages {
        child.write_memory(addr + p * PAGE, &[0xEE]).unwrap();
    }
    // Cross-host query traffic so net.* counters appear on both hosts.
    let proxy = fabric.proxy_right(&ha, &hb, kernel_b.host_port().clone());
    machcore::introspect::query_host_statistics(&proxy).unwrap();

    for machine in [kernel.machine(), kernel_b.machine()] {
        for (name, _) in machine.stats.snapshot().iter() {
            assert!(
                keys::ALL.contains(&name),
                "counter '{name}' on host {} is not declared in stats::keys::ALL",
                machine.host()
            );
        }
    }
}
