//! Kernel introspection over IPC: the host port answers statistics, VM
//! census, task and trace queries — locally, and from another host purely
//! through the net fabric (the `host_info`/`vm_statistics` analogue, with
//! the location transparency Section 2 promises for all port-based
//! services).

use machcore::introspect::{
    query_host_statistics, query_task_info, query_trace, query_vm_statistics,
};
use machcore::{spawn_manager, DataManager, Kernel, KernelConfig, KernelConn, Task};
use machipc::OolBuffer;
use machnet::Fabric;
use machsim::stats::keys;
use machvm::VmProt;
use std::sync::Arc;

const PAGE: u64 = 4096;

/// Answers every request with pages stamped by page number.
struct StampPager;

impl DataManager for StampPager {
    fn data_request(&mut self, k: &KernelConn, object: u64, offset: u64, length: u64, _a: VmProt) {
        let data: Vec<u8> = (offset..offset + length)
            .map(|i| (i / PAGE) as u8)
            .collect();
        k.data_provided(object, offset, OolBuffer::from_vec(data), VmProt::NONE);
    }
}

/// Faults `pages` externally paged pages on `kernel` and returns the task
/// (kept alive so task_info can see it).
fn fault_workload(kernel: &Arc<Kernel>, name: &str, pages: u64) -> Arc<Task> {
    let task = Task::create(kernel, name);
    let mgr = spawn_manager(kernel.machine(), "stamp", StampPager);
    let addr = task
        .vm_allocate_with_pager(None, pages * PAGE, mgr.port(), 0)
        .unwrap();
    let mut b = [0u8; 1];
    for p in 0..pages {
        task.read_memory(addr + p * PAGE, &mut b).unwrap();
        assert_eq!(b[0], p as u8);
    }
    task
}

#[test]
fn host_statistics_reflect_a_known_workload() {
    let kernel = Kernel::boot(KernelConfig::default());
    let before = query_host_statistics(kernel.host_port()).unwrap();
    let _task = fault_workload(&kernel, "intro", 8);
    let after = query_host_statistics(kernel.host_port()).unwrap();

    // Registry diff across the workload: counters the query path itself
    // never touches must show exactly the workload's activity.
    assert!(after.counter(keys::VM_FAULTS) - before.counter(keys::VM_FAULTS) >= 8);
    // Cluster paging coalesces cold pages into few pager fills, but at
    // least one round-trip and at most one per page must have happened.
    let fills = after.counter(keys::VM_PAGER_FILLS) - before.counter(keys::VM_PAGER_FILLS);
    assert!((1..=8).contains(&fills), "pager fills: {fills}");
    assert_eq!(
        after.counter(keys::VM_ZERO_FILLS),
        before.counter(keys::VM_ZERO_FILLS),
        "no zero fills in an externally paged workload"
    );
    let fault_hist = after
        .histograms
        .iter()
        .find(|h| h.name == machsim::trace::keys::FAULT_TO_RESOLUTION)
        .expect("fault latency histogram present");
    assert!(fault_hist.count >= 8);

    // The fetched snapshot renders as Prometheus text on the client side.
    let prom = after.to_prometheus();
    assert!(prom.contains("vm_faults "));
    assert!(prom.contains("vm_fault_to_resolution_ns_bucket{le="));
    assert!(prom.contains("trace_dropped_events "));
}

#[test]
fn vm_statistics_and_task_info_describe_live_state() {
    let kernel = Kernel::boot(KernelConfig::default());
    let _task = fault_workload(&kernel, "census-task", 6);

    let vm = query_vm_statistics(kernel.host_port()).unwrap();
    assert!(vm.census.total > 0);
    assert!(vm.census.free <= vm.census.total);
    assert!(vm.census.resident >= 6, "faulted pages are resident");
    assert!(!vm.shards.is_empty());
    let sharded_total: u64 = vm.shards.iter().map(|(r, _)| r).sum();
    assert_eq!(sharded_total, vm.census.resident, "shards cover the table");

    let info = query_task_info(kernel.host_port()).unwrap();
    let t = info
        .tasks
        .iter()
        .find(|t| t.name == "census-task")
        .expect("registered task visible");
    assert!(t.regions >= 1);
    assert_eq!(t.virtual_bytes, 6 * PAGE);
    assert!(t.resident_pages >= 6);
}

#[test]
fn trace_query_returns_the_fault_chain() {
    let kernel = Kernel::boot(KernelConfig::default());
    let _task = fault_workload(&kernel, "tracer", 4);

    let recent = query_trace(kernel.host_port(), 0, 256).unwrap();
    assert!(recent.records.iter().any(|r| r.kind == "fault"));
    let cid = recent
        .records
        .iter()
        .find(|r| r.kind == "data_request")
        .expect("pager round-trip traced")
        .correlation;
    assert_ne!(cid, 0);

    // Fetch that one chain by correlation id: fault through resume.
    let chain = query_trace(kernel.host_port(), cid, 256).unwrap();
    assert!(chain.records.iter().all(|r| r.correlation == cid));
    for kind in ["fault", "data_request", "data_provided", "resume"] {
        assert!(
            chain.records.iter().any(|r| r.kind == kind),
            "chain lacks {kind}"
        );
    }
}

#[test]
fn host_a_queries_host_b_across_the_fabric() {
    // Host alpha fetches beta's statistics purely via IPC: the host port
    // is proxied through the netmsgserver like any other port, so the
    // query, its reply port, and the reply all cross the network.
    let fabric = Fabric::new();
    let alpha = fabric.add_host("alpha");
    let beta = fabric.add_host("beta");
    let kernel_b = Kernel::boot_on(beta.machine().clone(), KernelConfig::default());

    let proxy = fabric.proxy_right(&alpha, &beta, kernel_b.host_port().clone());
    let before = query_host_statistics(&proxy).unwrap();
    assert_eq!(before.host, "beta", "snapshot names the serving host");

    let _task = fault_workload(&kernel_b, "remote-work", 8);

    let after = query_host_statistics(&proxy).unwrap();
    assert_eq!(after.host, "beta");
    assert!(after.counter(keys::VM_FAULTS) - before.counter(keys::VM_FAULTS) >= 8);
    let fills = after.counter(keys::VM_PAGER_FILLS) - before.counter(keys::VM_PAGER_FILLS);
    assert!((1..=8).contains(&fills), "pager fills: {fills}");
    assert_eq!(
        after.counter(keys::VM_ZERO_FILLS),
        before.counter(keys::VM_ZERO_FILLS)
    );
    // The query itself traveled the wire: alpha's net counters moved.
    assert!(alpha.machine().stats.get(keys::NET_MESSAGES) > 0);

    // The remote census and task list arrive the same way.
    let vm = query_vm_statistics(&proxy).unwrap();
    assert_eq!(vm.host, "beta");
    assert!(vm.census.resident >= 8);
    let info = query_task_info(&proxy).unwrap();
    assert!(info.tasks.iter().any(|t| t.name == "remote-work"));
}
