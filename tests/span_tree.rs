//! Satellite: a netmsgserver-proxied fault chain forms ONE connected
//! span tree. The fault happens on a workstation whose memory object is
//! a proxy for a file server on another host, so the pager protocol
//! rides the fabric both ways; the merged trace of both hosts must still
//! reconstruct into a single tree per fault — exactly one root, no
//! orphan spans — stitched across the network by `net.hop` spans that
//! open on one host's ring and close on the other's.

use machcore::{Kernel, KernelConfig, Task};
use machipc::{Message, MsgItem};
use machnet::Fabric;
use machpagers::FileServer;
use machsim::export;
use machsim::span::{self, SpanRecord};
use machsim::trace::CorrelationId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const PAGE: u64 = 4096;

#[test]
fn proxied_fault_chain_is_one_connected_span_tree() {
    let fabric = Fabric::new();
    let server_host = fabric.add_host("fileserver");
    let client_host = fabric.add_host("workstation");
    let _server_kernel = Kernel::boot_on(server_host.machine().clone(), KernelConfig::default());
    let client_kernel = Kernel::boot_on(client_host.machine().clone(), KernelConfig::default());

    let dev = Arc::new(machstorage::BlockDevice::new(server_host.machine(), 128));
    let fs = Arc::new(machstorage::FlatFs::format(dev, 0));
    let server = FileServer::start(server_host.machine(), fs);
    server.fs().create("tree.doc").expect("fresh fs");
    server
        .fs()
        .write("tree.doc", 0, &vec![0x37u8; 2 * PAGE as usize])
        .expect("file fits the device");

    let reply = fabric
        .rpc(
            &client_host,
            &server_host,
            server.port(),
            Message::new(machpagers::fs::FS_READ_FILE).with(MsgItem::bytes(b"tree.doc".to_vec())),
            Some(Duration::from_secs(10)),
        )
        .expect("file server answers the RPC");
    assert_eq!(reply.id, machpagers::fs::FS_OK);
    let size = reply.body[0].as_u64s().expect("size word")[0];
    let MsgItem::SendRights(rights) = &reply.body[1] else {
        panic!("memory object expected");
    };
    let object_proxy = fabric.proxy(&client_host, &server_host, rights[0].clone());

    let task = Task::create(&client_kernel, "remote-reader");
    // Single-page faults: each chain is one data_request round trip, so
    // every tree below is one fault's worth of causality.
    task.map().set_fault_policy(machvm::FaultPolicy::trusting());
    let addr = task
        .map_object_copy(None, size, object_proxy.port(), 0)
        .expect("proxied object maps");
    let mut b = [0u8; 1];
    task.read_memory(addr, &mut b)
        .expect("remote fault resolves");
    task.read_memory(addr + PAGE, &mut b)
        .expect("second remote fault resolves");

    // Each host's ring exports as a valid Chrome trace on its own (the
    // in-tree parser), and so does the merged view of both rings.
    let mut events = client_host.machine().trace.snapshot();
    events.extend(server_host.machine().trace.snapshot());
    for json in [
        export::chrome_trace_for(client_host.machine()),
        export::chrome_trace_for(server_host.machine()),
        export::chrome_trace(&events, 0),
    ] {
        let n = export::validate_chrome_trace(&json).expect("chrome trace parses");
        assert!(n > 0, "trace export is not empty");
    }

    // Rebuild spans from the MERGED rings: cross-host hops only pair up
    // when both ends' events are present.
    let spans = span::collect(&events);
    let mut chains: HashMap<CorrelationId, Vec<SpanRecord>> = HashMap::new();
    for s in &spans {
        if let Some(cid) = s.correlation {
            chains.entry(cid).or_default().push(s.clone());
        }
    }

    // The fault chains are the ones rooted at fault.submit; the proxied
    // ones additionally crossed the fabric.
    let fault_chains: Vec<&Vec<SpanRecord>> = chains
        .values()
        .filter(|c| c.iter().any(|s| s.name == "fault.submit"))
        .collect();
    assert!(
        !fault_chains.is_empty(),
        "the reads produced at least one fault chain"
    );
    let proxied = fault_chains
        .iter()
        .filter(|c| c.iter().any(|s| s.name == "net.hop" && s.is_cross_host()))
        .count();
    assert!(
        proxied >= 2,
        "both faults rode the fabric through the proxied object (saw {proxied})"
    );
    for chain in &fault_chains {
        span::validate_chain_tree(chain).unwrap_or_else(|e| {
            panic!(
                "proxied fault chain is not one connected tree: {e}\nspans: {:#?}",
                chain
                    .iter()
                    .map(|s| (s.name, s.id, s.parent, &s.open_host))
                    .collect::<Vec<_>>()
            )
        });
        // The tree is rooted at the fault itself, not at a network hop.
        let root = chain.iter().find(|s| s.parent == 0).expect("validated");
        assert_eq!(root.name, "fault.submit");
    }
}
