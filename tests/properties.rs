//! Property-style tests over core data structures and invariants.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these properties are exercised with the workspace's own deterministic
//! [`SplitMix64`] generator: each property runs a fixed number of seeded
//! cases, so failures reproduce exactly and the value space covered is
//! still randomized.

use machcore::{Kernel, KernelConfig, Task};
use machipc::OolBuffer;
use machsim::{Machine, SplitMix64};
use machstorage::{BlockDevice, FlatFs, LogRecord, WriteAheadLog};
use machvm::{PhysicalMemory, VmMap, VmProt};
use std::sync::Arc;

const CASES: u64 = 32;

fn bytes(rng: &mut SplitMix64, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// FlatFs behaves like a byte vector under arbitrary writes.
#[test]
fn flatfs_matches_reference_model() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xF1A7 + case);
        let m = Machine::default_machine();
        let dev = Arc::new(BlockDevice::new(&m, 256));
        let fs = FlatFs::format(dev, 0);
        fs.create("f").unwrap();
        let mut model: Vec<u8> = Vec::new();
        let nops = 1 + rng.next_below(11) as usize;
        for _ in 0..nops {
            let offset = rng.next_below(40_000) as usize;
            let len = 1 + rng.next_below(1_999) as usize;
            let data = bytes(&mut rng, len);
            fs.write("f", offset, &data).unwrap();
            if model.len() < offset + data.len() {
                model.resize(offset + data.len(), 0);
            }
            model[offset..offset + data.len()].copy_from_slice(&data);
        }
        assert_eq!(fs.read_all("f").unwrap(), model, "case {case}");
    }
}

/// WAL append/force/recover round-trips arbitrary record sequences.
#[test]
fn wal_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x3A1 + case);
        let m = Machine::default_machine();
        let dev = Arc::new(BlockDevice::new(&m, 64));
        let wal = WriteAheadLog::format(dev.clone(), 0, 64);
        let nrecs = 1 + rng.next_below(19) as usize;
        let records: Vec<LogRecord> = (0..nrecs)
            .map(|_| {
                let txid = rng.next_u64();
                match rng.next_below(3) {
                    0 => {
                        let len = rng.next_below(200) as usize;
                        let before = bytes(&mut rng, len);
                        LogRecord::Update {
                            txid,
                            object: 1,
                            offset: rng.next_u64(),
                            after: before.iter().rev().cloned().collect(),
                            before,
                        }
                    }
                    1 => LogRecord::Commit { txid },
                    _ => LogRecord::Abort { txid },
                }
            })
            .collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.force().unwrap();
        // Recover through a reopen (fresh in-memory state from disk).
        let wal2 = WriteAheadLog::open(dev, 0, 64).unwrap();
        assert_eq!(wal2.recover().unwrap(), records, "case {case}");
    }
}

/// vm_regions never overlap and vm_read/vm_write round-trip after any
/// sequence of allocations and deallocations.
#[test]
fn address_map_invariants() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xADD2 + case);
        let m = Machine::default_machine();
        let phys = PhysicalMemory::new(&m, 128 * 4096, 4096, 2);
        let map = VmMap::new(&phys);
        let mut live: Vec<(u64, u64)> = Vec::new();
        let nops = 1 + rng.next_below(23) as usize;
        for _ in 0..nops {
            let pages = 1 + rng.next_below(7);
            let dealloc = rng.chance(1, 2);
            if dealloc && !live.is_empty() {
                let (addr, size) = live.remove(0);
                map.deallocate(addr, size).unwrap();
            } else {
                let size = pages * 4096;
                let addr = map.allocate(None, size).unwrap();
                map.write(addr, &[pages as u8]).unwrap();
                live.push((addr, size));
            }
            // Invariant: regions are sorted and disjoint.
            let regions = map.regions();
            for w in regions.windows(2) {
                assert!(w[0].start + w[0].size <= w[1].start, "case {case}");
            }
        }
        // Every live region still holds its marker byte.
        for (addr, size) in &live {
            let data = map.read(*addr, 1).unwrap();
            assert_eq!(data[0] as u64 * 4096, *size, "case {case}");
        }
    }
}

/// Copy-on-write isolation survives arbitrary fork/write interleaving.
#[test]
fn cow_isolation() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC0 + case);
        let kernel = Kernel::boot(KernelConfig {
            memory_bytes: 64 * 4096,
            ..KernelConfig::default()
        });
        let parent = Task::create(&kernel, "p");
        let addr = parent.vm_allocate(4 * 4096).unwrap();
        for p in 0..4u64 {
            parent.write_memory(addr + p * 4096, &[0]).unwrap();
        }
        let child = parent.fork("c");
        let mut parent_model = [0u8; 4];
        let mut child_model = [0u8; 4];
        let nwrites = 1 + rng.next_below(15) as usize;
        for _ in 0..nwrites {
            let page = rng.next_below(4);
            let value = rng.next_u64() as u8;
            let target = addr + page * 4096;
            if rng.chance(1, 2) {
                child.write_memory(target, &[value]).unwrap();
                child_model[page as usize] = value;
            } else {
                parent.write_memory(target, &[value]).unwrap();
                parent_model[page as usize] = value;
            }
        }
        for p in 0..4u64 {
            let mut b = [0u8; 1];
            parent.read_memory(addr + p * 4096, &mut b).unwrap();
            assert_eq!(b[0], parent_model[p as usize], "case {case}");
            child.read_memory(addr + p * 4096, &mut b).unwrap();
            assert_eq!(b[0], child_model[p as usize], "case {case}");
        }
    }
}

/// OolBuffer transfers share storage until written.
#[test]
fn ool_buffer_sharing() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x001 + case);
        let len = 1 + rng.next_below(9_999) as usize;
        let data = bytes(&mut rng, len);
        let a = OolBuffer::from_slice(&data);
        let b = a.clone();
        assert!(a.shares_storage_with(&b), "case {case}");
        let mut private = b.to_mut_vec();
        if let Some(first) = private.first_mut() {
            *first = first.wrapping_add(1);
        }
        assert_eq!(a.as_slice(), &data[..], "case {case}");
    }
}

/// Messages from each sender arrive in that sender's send order (FIFO
/// per sender), regardless of interleaving.
#[test]
fn ipc_fifo_per_sender() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xF1F0 + case);
        let nsenders = 2 + rng.next_below(3) as usize;
        let counts: Vec<usize> = (0..nsenders)
            .map(|_| 1 + rng.next_below(19) as usize)
            .collect();
        let machine = Machine::default_machine();
        let (rx, tx) = machipc::ReceiveRight::allocate(&machine);
        rx.set_backlog(1024);
        let total: usize = counts.iter().sum();
        std::thread::scope(|s| {
            for (sender_id, &n) in counts.iter().enumerate() {
                let tx = tx.clone();
                s.spawn(move || {
                    for seq in 0..n {
                        tx.send(machipc::Message::new((sender_id * 1000 + seq) as u32), None)
                            .unwrap();
                    }
                });
            }
            let mut last_seen: Vec<i64> = vec![-1; counts.len()];
            for _ in 0..total {
                let m = rx
                    .receive(Some(std::time::Duration::from_secs(10)))
                    .unwrap();
                let sender = (m.id / 1000) as usize;
                let seq = (m.id % 1000) as i64;
                assert!(seq > last_seen[sender], "sender {sender} reordered");
                last_seen[sender] = seq;
            }
        });
    }
}

/// Port name spaces: names stay valid until deallocated, never after.
#[test]
fn portspace_name_lifecycle() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x9A3E + case);
        let machine = Machine::default_machine();
        let space = machipc::PortSpace::new(&machine);
        let mut live: Vec<machipc::PortName> = Vec::new();
        let mut dead: Vec<machipc::PortName> = Vec::new();
        let nops = 1 + rng.next_below(39) as usize;
        for _ in 0..nops {
            if rng.chance(1, 2) || live.is_empty() {
                live.push(space.port_allocate());
            } else {
                let name = live.remove(0);
                space.port_deallocate(name).unwrap();
                dead.push(name);
            }
            for n in &live {
                assert!(space.port_status(*n).is_ok(), "case {case}");
            }
            for n in &dead {
                assert!(space.port_status(*n).is_err(), "case {case}");
            }
        }
    }
}

/// The resident page cache never lies: supply then lookup returns the
/// same bytes, and flush forgets them.
#[test]
fn resident_cache_consistency() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x2E5 + case);
        let npages = 1 + rng.next_below(5) as usize;
        let pages: Vec<Vec<u8>> = (0..npages).map(|_| bytes(&mut rng, 4096)).collect();
        let m = Machine::default_machine();
        let phys = PhysicalMemory::new(&m, 32 * 4096, 4096, 2);
        let obj = machvm::VmObject::new_temporary(1 << 20);
        for (i, page) in pages.iter().enumerate() {
            phys.supply_page(&obj, (i as u64) * 4096, page, VmProt::NONE)
                .unwrap();
        }
        for (i, page) in pages.iter().enumerate() {
            match phys.lookup(obj.id(), (i as u64) * 4096) {
                machvm::PageLookup::Resident { frame, .. } => {
                    phys.with_frame(frame, |d| assert_eq!(d, &page[..]));
                }
                other => panic!("case {case}: expected resident, got {other:?}"),
            }
        }
        phys.release_object(&obj, false);
        assert_eq!(phys.resident_pages_of(obj.id()), 0, "case {case}");
    }
}
