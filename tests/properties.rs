//! Property-based tests over core data structures and invariants.

use machcore::{Kernel, KernelConfig, Task};
use machipc::OolBuffer;
use machsim::Machine;
use machstorage::{BlockDevice, FlatFs, LogRecord, WriteAheadLog};
use machvm::{PhysicalMemory, VmMap, VmProt};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FlatFs behaves like a byte vector under arbitrary writes.
    #[test]
    fn flatfs_matches_reference_model(
        ops in prop::collection::vec((0usize..40_000, prop::collection::vec(any::<u8>(), 1..2_000)), 1..12)
    ) {
        let m = Machine::default_machine();
        let dev = Arc::new(BlockDevice::new(&m, 256));
        let fs = FlatFs::format(dev, 0);
        fs.create("f").unwrap();
        let mut model: Vec<u8> = Vec::new();
        for (offset, data) in &ops {
            fs.write("f", *offset, data).unwrap();
            if model.len() < offset + data.len() {
                model.resize(offset + data.len(), 0);
            }
            model[*offset..offset + data.len()].copy_from_slice(data);
        }
        prop_assert_eq!(fs.read_all("f").unwrap(), model);
    }

    /// WAL append/force/recover round-trips arbitrary record sequences.
    #[test]
    fn wal_roundtrip(
        recs in prop::collection::vec(
            (any::<u64>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..200), 0u8..3),
            1..20
        )
    ) {
        let m = Machine::default_machine();
        let dev = Arc::new(BlockDevice::new(&m, 64));
        let wal = WriteAheadLog::format(dev.clone(), 0, 64);
        let records: Vec<LogRecord> = recs
            .iter()
            .map(|(txid, offset, data, kind)| match kind {
                0 => LogRecord::Update {
                    txid: *txid,
                    object: 1,
                    offset: *offset,
                    before: data.clone(),
                    after: data.iter().rev().cloned().collect(),
                },
                1 => LogRecord::Commit { txid: *txid },
                _ => LogRecord::Abort { txid: *txid },
            })
            .collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.force().unwrap();
        // Recover through a reopen (fresh in-memory state from disk).
        let wal2 = WriteAheadLog::open(dev, 0, 64).unwrap();
        prop_assert_eq!(wal2.recover().unwrap(), records);
    }

    /// vm_regions never overlap and vm_read/vm_write round-trip after any
    /// sequence of allocations and deallocations.
    #[test]
    fn address_map_invariants(
        ops in prop::collection::vec((1u64..8, any::<bool>()), 1..24)
    ) {
        let m = Machine::default_machine();
        let phys = PhysicalMemory::new(&m, 128 * 4096, 4096, 2);
        let map = VmMap::new(&phys);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (pages, dealloc) in &ops {
            if *dealloc && !live.is_empty() {
                let (addr, size) = live.remove(0);
                map.deallocate(addr, size).unwrap();
            } else {
                let size = pages * 4096;
                let addr = map.allocate(None, size).unwrap();
                map.write(addr, &[*pages as u8]).unwrap();
                live.push((addr, size));
            }
            // Invariant: regions are sorted and disjoint.
            let regions = map.regions();
            for w in regions.windows(2) {
                prop_assert!(w[0].start + w[0].size <= w[1].start);
            }
        }
        // Every live region still holds its marker byte.
        for (addr, size) in &live {
            let data = map.read(*addr, 1).unwrap();
            prop_assert_eq!(data[0] as u64 * 4096, *size);
        }
    }

    /// Copy-on-write isolation survives arbitrary fork/write interleaving.
    #[test]
    fn cow_isolation(
        writes in prop::collection::vec((0u64..4, any::<u8>(), any::<bool>()), 1..16)
    ) {
        let kernel = Kernel::boot(KernelConfig {
            memory_bytes: 64 * 4096,
            ..KernelConfig::default()
        });
        let parent = Task::create(&kernel, "p");
        let addr = parent.vm_allocate(4 * 4096).unwrap();
        for p in 0..4u64 {
            parent.write_memory(addr + p * 4096, &[0]).unwrap();
        }
        let child = parent.fork("c");
        let mut parent_model = [0u8; 4];
        let mut child_model = [0u8; 4];
        for (page, value, to_child) in &writes {
            let target = addr + page * 4096;
            if *to_child {
                child.write_memory(target, &[*value]).unwrap();
                child_model[*page as usize] = *value;
            } else {
                parent.write_memory(target, &[*value]).unwrap();
                parent_model[*page as usize] = *value;
            }
        }
        for p in 0..4u64 {
            let mut b = [0u8; 1];
            parent.read_memory(addr + p * 4096, &mut b).unwrap();
            prop_assert_eq!(b[0], parent_model[p as usize]);
            child.read_memory(addr + p * 4096, &mut b).unwrap();
            prop_assert_eq!(b[0], child_model[p as usize]);
        }
    }

    /// OolBuffer transfers share storage until written.
    #[test]
    fn ool_buffer_sharing(data in prop::collection::vec(any::<u8>(), 1..10_000)) {
        let a = OolBuffer::from_slice(&data);
        let b = a.clone();
        prop_assert!(a.shares_storage_with(&b));
        let mut private = b.to_mut_vec();
        if let Some(first) = private.first_mut() {
            *first = first.wrapping_add(1);
        }
        prop_assert_eq!(a.as_slice(), &data[..]);
    }

    /// Messages from each sender arrive in that sender's send order (FIFO
    /// per sender), regardless of interleaving.
    #[test]
    fn ipc_fifo_per_sender(
        counts in prop::collection::vec(1usize..20, 2..5)
    ) {
        let machine = Machine::default_machine();
        let (rx, tx) = machipc::ReceiveRight::allocate(&machine);
        rx.set_backlog(1024);
        let total: usize = counts.iter().sum();
        std::thread::scope(|s| {
            for (sender_id, &n) in counts.iter().enumerate() {
                let tx = tx.clone();
                s.spawn(move || {
                    for seq in 0..n {
                        tx.send(
                            machipc::Message::new((sender_id * 1000 + seq) as u32),
                            None,
                        )
                        .unwrap();
                    }
                });
            }
            let mut last_seen: Vec<i64> = vec![-1; counts.len()];
            for _ in 0..total {
                let m = rx
                    .receive(Some(std::time::Duration::from_secs(10)))
                    .unwrap();
                let sender = (m.id / 1000) as usize;
                let seq = (m.id % 1000) as i64;
                assert!(seq > last_seen[sender], "sender {sender} reordered");
                last_seen[sender] = seq;
            }
        });
    }

    /// Port name spaces: names stay valid until deallocated, never after.
    #[test]
    fn portspace_name_lifecycle(ops in prop::collection::vec(any::<bool>(), 1..40)) {
        let machine = Machine::default_machine();
        let space = machipc::PortSpace::new(&machine);
        let mut live: Vec<machipc::PortName> = Vec::new();
        let mut dead: Vec<machipc::PortName> = Vec::new();
        for op in ops {
            if op || live.is_empty() {
                live.push(space.port_allocate());
            } else {
                let name = live.remove(0);
                space.port_deallocate(name).unwrap();
                dead.push(name);
            }
            for n in &live {
                prop_assert!(space.port_status(*n).is_ok());
            }
            for n in &dead {
                prop_assert!(space.port_status(*n).is_err());
            }
        }
    }

    /// The resident page cache never lies: supply then lookup returns the
    /// same bytes, and flush forgets them.
    #[test]
    fn resident_cache_consistency(
        pages in prop::collection::vec(prop::collection::vec(any::<u8>(), 4096..=4096), 1..6)
    ) {
        let m = Machine::default_machine();
        let phys = PhysicalMemory::new(&m, 32 * 4096, 4096, 2);
        let obj = machvm::VmObject::new_temporary(1 << 20);
        for (i, page) in pages.iter().enumerate() {
            phys.supply_page(&obj, (i as u64) * 4096, page, VmProt::NONE).unwrap();
        }
        for (i, page) in pages.iter().enumerate() {
            match phys.lookup(obj.id(), (i as u64) * 4096) {
                machvm::PageLookup::Resident { frame, .. } => {
                    phys.with_frame(frame, |d| assert_eq!(d, &page[..]));
                }
                other => prop_assert!(false, "expected resident, got {:?}", other),
            }
        }
        phys.release_object(&obj, false);
        prop_assert_eq!(phys.resident_pages_of(obj.id()), 0);
    }
}
