//! The two UNIX implementations must be observationally equivalent: same
//! operations, same visible file contents — only the cost profile differs.

use machcore::{Kernel, KernelConfig, Task};
use machpagers::{FileServer, FsClient};
use machsim::{Machine, SplitMix64};
use machstorage::{BlockDevice, FlatFs};
use machunix::{BaselineUnix, MachUnix, UnixIo};
use std::sync::Arc;

fn baseline() -> (Machine, BaselineUnix) {
    let m = Machine::default_machine();
    let dev = Arc::new(BlockDevice::new(&m, 1024));
    let fs = Arc::new(FlatFs::format(dev, 0));
    (m.clone(), BaselineUnix::new(&m, fs, 4 << 20, 10))
}

fn mach() -> (Arc<Kernel>, Arc<FileServer>, MachUnix) {
    let k = Kernel::boot(KernelConfig::default());
    let dev = Arc::new(BlockDevice::new(k.machine(), 1024));
    let fs = Arc::new(FlatFs::format(dev, 0));
    let server = FileServer::start(k.machine(), fs);
    let task = Task::create(&k, "emul");
    let unix = MachUnix::new(&task, FsClient::new(server.port().clone()));
    (k, server, unix)
}

/// Applies a deterministic random operation script; returns the final
/// contents of each file as read back through the interface.
fn run_script(io: &dyn UnixIo, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SplitMix64::new(seed);
    let files = 3usize;
    let size = 3 * 4096usize;
    for i in 0..files {
        io.create(&format!("f{i}"), size).unwrap();
    }
    let fds: Vec<_> = (0..files)
        .map(|i| io.open(&format!("f{i}")).unwrap())
        .collect();
    for _ in 0..200 {
        let f = rng.next_below(files as u64) as usize;
        let off = rng.next_below((size - 64) as u64) as usize;
        let len = 1 + rng.next_below(63) as usize;
        if rng.chance(1, 2) {
            let data: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
            io.write(fds[f], off, &data).unwrap();
        } else {
            let mut buf = vec![0u8; len];
            io.read(fds[f], off, &mut buf).unwrap();
        }
    }
    let mut out = Vec::new();
    for (i, fd) in fds.iter().enumerate() {
        let mut buf = vec![0u8; size];
        io.read(*fd, 0, &mut buf).unwrap();
        io.close(*fd).unwrap();
        out.push(buf);
        let _ = i;
    }
    io.sync_all().unwrap();
    out
}

#[test]
fn random_scripts_produce_identical_contents() {
    for seed in [1u64, 42, 1987] {
        let (_mb, b) = baseline();
        let base_result = run_script(&b, seed);
        let (_k, _server, u) = mach();
        let mach_result = run_script(&u, seed);
        assert_eq!(base_result, mach_result, "seed {seed} diverged");
    }
}

#[test]
fn durable_contents_match_after_sync() {
    // After sync_all, the on-disk filesystem contents must agree between
    // the two implementations (eventually, for the async mapped path).
    let seed = 7u64;
    let (_mb, b) = baseline();
    run_script(&b, seed);
    let (_k, server, u) = mach();
    run_script(&u, seed);
    // The mapped path flushes asynchronously; poll for convergence.
    let deadline = machsim::wall::Deadline::after(std::time::Duration::from_secs(5));
    loop {
        let mut all_equal = true;
        for i in 0..3 {
            let name = format!("f{i}");
            let mach_bytes = server.fs().read_all(&name).unwrap();
            let mut want = vec![0u8; mach_bytes.len()];
            let fd = u.open(&name).unwrap();
            u.read(fd, 0, &mut want).unwrap();
            u.close(fd).unwrap();
            if mach_bytes != want {
                all_equal = false;
            }
        }
        if all_equal {
            break;
        }
        assert!(
            !deadline.expired(),
            "mapped writes never reached the server filesystem"
        );
        u.sync_all().unwrap();
        machsim::wall::sleep(std::time::Duration::from_millis(20));
    }
}

#[test]
fn cost_profiles_differ_as_designed() {
    // Identical scripts, radically different I/O profiles: the mapped path
    // avoids per-call copies; re-reads cost no disk ops on either when the
    // data fits, but the baseline pays copies every time.
    let seed = 5u64;
    let (mb, b) = baseline();
    run_script(&b, seed);
    let base_copied = mb.stats.get(machsim::stats::keys::BYTES_COPIED);
    let (k, _server, u) = mach();
    run_script(&u, seed);
    let mach_copied = k.machine().stats.get(machsim::stats::keys::BYTES_COPIED);
    assert!(
        base_copied > 2 * mach_copied,
        "baseline copies {base_copied} vs mach {mach_copied}"
    );
}
