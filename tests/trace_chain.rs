//! End-to-end tests for the causal trace layer: one external-object fault
//! must produce one correlated chain spanning vm → ipc → pager → storage.

use machcore::{Kernel, KernelConfig, Task};
use machpagers::{FileServer, FsClient};
use machsim::trace::{keys as lat_keys, milestones};
use machsim::{EventKind, Machine};
use machstorage::{BlockDevice, FlatFs};
use std::sync::Arc;

/// Boots a kernel and file server on one machine with one 8 KiB file.
fn file_backed_setup() -> (Machine, Arc<Kernel>, Arc<FileServer>) {
    let machine = Machine::default_machine();
    let kernel = Kernel::boot_on(machine.clone(), KernelConfig::default());
    let dev = Arc::new(BlockDevice::new(&machine, 128));
    let fs = Arc::new(FlatFs::format(dev, 0));
    let server = FileServer::start(&machine, fs);
    server.fs().create("data.bin").unwrap();
    server
        .fs()
        .write("data.bin", 0, &vec![0x5Au8; 8192])
        .unwrap();
    (machine, kernel, server)
}

/// The tentpole acceptance test: a single fault on an externally paged
/// region yields the exact milestone chain
/// `fault → msg_send → data_request → disk_read → data_provided → resume`
/// under one shared correlation id.
#[test]
fn external_fault_produces_one_correlated_chain() {
    let (machine, kernel, server) = file_backed_setup();
    let client = FsClient::new(server.port().clone());
    let task = Task::create(&kernel, "reader");
    let (addr, size) = client.read_file(&task, "data.bin").unwrap();
    assert_eq!(size, 8192);

    // Only the fault below should land in the buffer.
    machine.trace.clear();
    let mut byte = [0u8; 1];
    task.read_memory(addr, &mut byte).unwrap();
    assert_eq!(byte[0], 0x5A);

    let faults: Vec<_> = machine
        .trace
        .snapshot()
        .into_iter()
        .filter(|e| e.kind == EventKind::Fault)
        .collect();
    assert_eq!(faults.len(), 1, "one read -> one fault");
    let cid = faults[0].correlation_id.expect("fault allocates a cid");

    let chain = machine.trace.chain(cid);
    assert!(
        chain.iter().all(|e| e.correlation_id == Some(cid)),
        "every hop shares the fault's correlation id"
    );
    // The chain crosses every layer: vm, ipc, the pager, and storage.
    for prefix in ["vm.", "port#", "pager.", "disk"] {
        assert!(
            chain.iter().any(|e| e.actor.starts_with(prefix)),
            "chain missing a {prefix} hop: {chain:#?}"
        );
    }
    assert_eq!(
        milestones(&chain),
        vec![
            EventKind::Fault,
            EventKind::MsgSend,
            EventKind::DataRequest,
            EventKind::DiskRead,
            EventKind::DataProvided,
            EventKind::Resume,
        ],
        "full chain was: {chain:#?}"
    );
    // Events are causally ordered: sequence numbers strictly increase.
    assert!(chain.windows(2).all(|w| w[0].seq < w[1].seq));

    // The latency histograms saw the same journey.
    for key in [
        lat_keys::FAULT_TO_RESOLUTION,
        lat_keys::REQUEST_TO_FILL,
        lat_keys::SEND_TO_RECEIVE,
    ] {
        let h = machine
            .latency
            .get(key)
            .unwrap_or_else(|| panic!("histogram {key} missing"));
        assert!(h.count() > 0, "{key} recorded no samples");
        assert!(h.p99_ns() >= h.p50_ns());
    }
}

/// A second fault on the same page is served from the VM page cache: same
/// correlation discipline, but the chain never leaves the vm layer.
#[test]
fn cached_fault_chain_stays_local() {
    let (machine, kernel, server) = file_backed_setup();
    let client = FsClient::new(server.port().clone());
    let task = Task::create(&kernel, "reader");
    let (addr, _) = client.read_file(&task, "data.bin").unwrap();
    let mut byte = [0u8; 1];
    task.read_memory(addr, &mut byte).unwrap(); // cold: fills the cache

    machine.trace.clear();
    let task2 = Task::create(&kernel, "rereader");
    let (addr2, _) = client.read_file(&task2, "data.bin").unwrap();
    machine.trace.clear();
    task2.read_memory(addr2, &mut byte).unwrap();

    let events = machine.trace.snapshot();
    let fault = events
        .iter()
        .find(|e| e.kind == EventKind::Fault)
        .expect("warm read still faults once");
    let chain = machine.trace.chain(fault.correlation_id.unwrap());
    assert_eq!(
        milestones(&chain),
        vec![EventKind::Fault, EventKind::Resume],
        "warm fault should resolve without pager traffic: {chain:#?}"
    );
}

/// Tracing can be switched off and the stack keeps working silently.
#[test]
fn disabled_tracing_records_nothing() {
    let (machine, kernel, server) = file_backed_setup();
    machine.trace.set_enabled(false);
    machine.trace.clear();
    let client = FsClient::new(server.port().clone());
    let task = Task::create(&kernel, "reader");
    let (addr, _) = client.read_file(&task, "data.bin").unwrap();
    let mut byte = [0u8; 1];
    task.read_memory(addr, &mut byte).unwrap();
    assert_eq!(byte[0], 0x5A);
    assert!(machine.trace.is_empty());
}
