//! The stall watchdog (Section 6.2.1 turned inward): a wedged external
//! pager is detected and self-reported by the kernel — exactly once per
//! stalled chain, with a bounded black-box report — while healthy runs,
//! however congested, are never flagged.

use machcore::{spawn_manager, DataManager, Kernel, KernelConfig, KernelConn, Task};
use machipc::OolBuffer;
use machsim::stats::keys;
use machsim::EventKind;
use machvm::{FaultPolicy, VmProt};
use std::time::Duration;

const PAGE: u64 = 4096;

/// The canonical wedge: a pager that never answers `data_request`.
struct BlackHolePager;

impl DataManager for BlackHolePager {
    fn data_request(&mut self, _k: &KernelConn, _object: u64, _offset: u64, _len: u64, _a: VmProt) {
    }
}

/// A healthy pager that answers instantly.
struct EchoPager;

impl DataManager for EchoPager {
    fn data_request(&mut self, k: &KernelConn, object: u64, offset: u64, length: u64, _a: VmProt) {
        k.data_provided(
            object,
            offset,
            OolBuffer::from_vec(vec![0x5A; length as usize]),
            VmProt::NONE,
        );
    }
}

#[test]
fn wedged_pager_is_flagged_exactly_once_with_black_box_report() {
    let kernel = Kernel::boot(KernelConfig::default());
    let task = Task::create(&kernel, "wedged");
    // Rescue the faulting thread after 2s (Section 6.2.1 zero-fill
    // substitution) so it can be joined; the watchdog's wall debounce
    // (~300ms) fires long before that.
    task.map()
        .set_fault_policy(FaultPolicy::zero_fill_after(Duration::from_secs(2)));
    let mgr = spawn_manager(kernel.machine(), "blackhole", BlackHolePager);
    let addr = task
        .vm_allocate_with_pager(None, PAGE, mgr.port(), 0)
        .unwrap();

    let mut b = [0xFFu8; 1];
    task.read_memory(addr, &mut b).unwrap();
    assert_eq!(b[0], 0, "timeout substituted zero-filled memory");

    let stats = &kernel.machine().stats;
    assert_eq!(
        stats.get(keys::WATCHDOG_STALLS),
        1,
        "the stalled chain is flagged exactly once"
    );
    assert_eq!(
        kernel
            .machine()
            .trace
            .snapshot()
            .iter()
            .filter(|e| e.kind == EventKind::WatchdogStall)
            .count(),
        1
    );

    let reports = kernel.watchdog_reports();
    assert_eq!(reports.len(), 1, "one black-box report filed");
    let report = &reports[0];
    assert!(report.contains("watchdog stall: cid#"));
    assert!(report.contains("chain timeline"));
    assert!(report.contains("fault"), "timeline shows the stalled hop");
    assert!(report.contains("-- counters --"));
    assert!(report.contains(keys::VM_FAULTS));
    assert!(report.contains("-- resident memory --"));
    assert!(report.contains("FrameCensus"));
}

#[test]
fn healthy_pager_is_never_flagged_even_with_aggressive_threshold() {
    // A 1ns simulated stall budget: every fault blows the sim deadline
    // instantly, so only the wall-clock debounce separates healthy from
    // wedged. Healthy faults resolve in wall-microseconds and must never
    // be flagged no matter how long the run keeps faulting.
    let kernel = Kernel::boot(KernelConfig {
        watchdog_stall_ns: 1,
        ..KernelConfig::default()
    });
    let task = Task::create(&kernel, "healthy");
    let mgr = spawn_manager(kernel.machine(), "echo", EchoPager);
    let pages = 16u64;
    let addr = task
        .vm_allocate_with_pager(None, pages * PAGE, mgr.port(), 0)
        .unwrap();

    // Keep faults in flight across many watchdog scan periods.
    let deadline = machsim::wall::Deadline::after(Duration::from_millis(400));
    let mut b = [0u8; 1];
    while !deadline.expired() {
        for p in 0..pages {
            task.read_memory(addr + p * PAGE, &mut b).unwrap();
            assert_eq!(b[0], 0x5A);
        }
    }

    assert_eq!(
        kernel.machine().stats.get(keys::WATCHDOG_STALLS),
        0,
        "no false positives on a healthy run"
    );
    assert!(kernel.watchdog_reports().is_empty());
}
