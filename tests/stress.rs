//! Stress and convergence tests: many threads, many tasks, random
//! schedules — the concurrency the paper's multiprocessor setting implies.

use machcore::{spawn_manager, DataManager, Kernel, KernelConfig, KernelConn, Task};
use machipc::OolBuffer;
use machnet::Fabric;
use machpagers::SharedMemoryServer;
use machsim::SplitMix64;
use machvm::VmProt;
use std::time::Duration;

const PAGE: u64 = 4096;

struct OffsetPager;

impl DataManager for OffsetPager {
    fn data_request(&mut self, k: &KernelConn, object: u64, offset: u64, length: u64, _a: VmProt) {
        let data: Vec<u8> = (offset..offset + length)
            .map(|i| (i / PAGE) as u8)
            .collect();
        k.data_provided(object, offset, OolBuffer::from_vec(data), VmProt::NONE);
    }
}

#[test]
fn many_threads_fault_one_object_concurrently() {
    // Eight threads race over 64 pages of one pager-backed object; every
    // read must see the right contents and the pager must be asked at most
    // once per page.
    let kernel = Kernel::boot(KernelConfig {
        memory_bytes: 64 << 20,
        ..KernelConfig::default()
    });
    let task = Task::create(&kernel, "storm");
    let mgr = spawn_manager(kernel.machine(), "offsets", OffsetPager);
    let pages = 64u64;
    let addr = task
        .vm_allocate_with_pager(None, pages * PAGE, mgr.port(), 0)
        .unwrap();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let task = task.clone();
            s.spawn(move || {
                let mut rng = SplitMix64::new(t + 1);
                for _ in 0..200 {
                    let p = rng.next_below(pages);
                    let mut b = [0u8; 1];
                    task.read_memory(addr + p * PAGE, &mut b).unwrap();
                    assert_eq!(b[0], p as u8, "page {p} contents");
                }
            });
        }
    });
    assert!(
        kernel
            .machine()
            .stats
            .get(machsim::stats::keys::VM_PAGER_FILLS)
            <= pages,
        "concurrent faults coalesced per page"
    );
    // The stall watchdog runs by default: a healthy (if congested) pager
    // must never be flagged — zero false positives under contention.
    assert_eq!(
        kernel
            .machine()
            .stats
            .get(machsim::stats::keys::WATCHDOG_STALLS),
        0,
        "healthy run flagged by the stall watchdog"
    );
    // With `--features lockdep` every classified lock acquisition above was
    // order-checked against the declared hierarchy (panicking on violation);
    // assert the witness actually saw nested traffic so a silent no-op
    // build cannot masquerade as a clean run.
    #[cfg(feature = "lockdep")]
    assert!(
        machvm::lockdep::nested_acquisitions() > 0,
        "lockdep witness saw no nested acquisitions in an 8-thread fault storm"
    );
}

#[test]
fn fork_storm_under_memory_pressure() {
    // Repeated fork/write/drop under a small memory: copy-on-write,
    // shadow collapse, pageout and the default pager all churn together;
    // data must stay correct throughout.
    let kernel = Kernel::boot(KernelConfig {
        memory_bytes: 16 * 4096,
        reserve_pages: 4,
        ..KernelConfig::default()
    });
    let mut current = Task::create(&kernel, "gen0");
    let pages = 16u64;
    let addr = current.vm_allocate(pages * PAGE).unwrap();
    for i in 0..pages {
        current
            .write_memory(addr + i * PAGE, &[0, i as u8])
            .unwrap();
    }
    for gen in 1..=12u8 {
        let child = current.fork(&format!("gen{gen}"));
        drop(current);
        // The child mutates a sliding window of pages.
        for i in 0..4u64 {
            let p = (gen as u64 + i) % pages;
            child
                .write_memory(addr + p * PAGE, &[gen, p as u8])
                .unwrap();
        }
        // Every page still carries its page number in byte 1.
        for p in 0..pages {
            let mut b = [0u8; 2];
            child.read_memory(addr + p * PAGE, &mut b).unwrap();
            assert_eq!(b[1], p as u8, "generation {gen}, page {p}");
        }
        current = child;
    }
    assert!(
        kernel
            .machine()
            .stats
            .get(machsim::stats::keys::VM_PAGEOUTS)
            > 0,
        "pressure reached the pageout path"
    );
}

#[test]
fn netshm_random_schedule_converges() {
    // Three clients on three hosts apply a random interleaving of writes
    // to random pages (each page owned by one writer to keep a defined
    // final value), then everyone must converge on the same final state.
    let fabric = Fabric::new();
    let hs = fabric.add_host("server");
    let hosts: Vec<_> = (0..3).map(|i| fabric.add_host(&format!("h{i}"))).collect();
    let kernels: Vec<_> = hosts
        .iter()
        .map(|h| Kernel::boot_on(h.machine().clone(), KernelConfig::default()))
        .collect();
    let tasks: Vec<_> = kernels
        .iter()
        .enumerate()
        .map(|(i, k)| Task::create(k, &format!("t{i}")))
        .collect();
    let pages = 6u64;
    let server = SharedMemoryServer::start(&fabric, &hs, pages * PAGE);
    let addrs: Vec<u64> = tasks
        .iter()
        .zip(hosts.iter())
        .map(|(t, h)| server.attach(t, h).unwrap())
        .collect();
    // Page p is written only by client p % 3; random order, random values.
    let mut rng = SplitMix64::new(2026);
    let mut expected = vec![0u8; pages as usize];
    for _ in 0..60 {
        let p = rng.next_below(pages);
        let v = (rng.next_below(250) + 1) as u8;
        let writer = (p % 3) as usize;
        tasks[writer]
            .write_memory(addrs[writer] + p * PAGE, &[v])
            .unwrap();
        expected[p as usize] = v;
    }
    // Convergence: every client eventually reads the expected final state.
    for (ci, (t, &a)) in tasks.iter().zip(addrs.iter()).enumerate() {
        for p in 0..pages {
            let deadline = machsim::wall::Deadline::after(Duration::from_secs(10));
            loop {
                let mut b = [0u8; 1];
                t.read_memory(a + p * PAGE, &mut b).unwrap();
                if b[0] == expected[p as usize] {
                    break;
                }
                assert!(
                    !deadline.expired(),
                    "client {ci} page {p}: saw {} expected {}",
                    b[0],
                    expected[p as usize]
                );
                machsim::wall::sleep(Duration::from_millis(5));
            }
        }
    }
}

#[test]
fn port_churn_with_live_traffic() {
    // Allocate, use and destroy thousands of ports while traffic flows;
    // death notifications and queue cleanup must never wedge.
    let kernel = Kernel::boot(KernelConfig::default());
    let machine = kernel.machine().clone();
    std::thread::scope(|s| {
        for t in 0..4 {
            let machine = machine.clone();
            s.spawn(move || {
                let mut rng = SplitMix64::new(t + 77);
                for _ in 0..500 {
                    let (rx, tx) = machipc::ReceiveRight::allocate(&machine);
                    let n = rng.next_below(4);
                    for i in 0..n {
                        tx.send(machipc::Message::new(i as u32), None).unwrap();
                    }
                    if rng.chance(1, 2) {
                        for _ in 0..n {
                            rx.receive(None).unwrap();
                        }
                    }
                    // Dropping rx discards the rest and notifies senders.
                    drop(rx);
                    assert!(!tx.is_alive());
                }
            });
        }
    });
}

#[test]
fn ipc_storm_exercises_sharded_batched_and_handoff_paths() {
    // Model-checks the port lock hierarchy (port-control -> port-shard)
    // under the lockdep witness: mixed batched and single sends from many
    // threads, batched receives, RPC handoffs and port death all racing.
    let kernel = Kernel::boot(KernelConfig::default());
    let machine = kernel.machine().clone();
    let (rx, tx) = machipc::ReceiveRight::allocate(&machine);
    rx.set_backlog(256);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let tx = tx.clone();
            s.spawn(move || {
                let mut rng = SplitMix64::new(t + 31);
                for round in 0..200u32 {
                    if rng.chance(1, 2) {
                        let batch: Vec<machipc::Message> = (0..8)
                            .map(|i| machipc::Message::new(round * 8 + i))
                            .collect();
                        tx.send_many(batch, None).expect("batched send succeeds");
                    } else {
                        for i in 0..8 {
                            tx.send(machipc::Message::new(round * 8 + i), None)
                                .expect("send to a live port succeeds");
                        }
                    }
                }
            });
        }
        // An RPC pair on the side keeps the handoff slot hot while the
        // main port churns.
        let (srv_rx, srv_tx) = machipc::ReceiveRight::allocate(&machine);
        s.spawn(move || {
            while let Ok(req) = srv_rx.receive(None) {
                if req.id == u32::MAX {
                    break;
                }
                if let Some(reply) = req.reply {
                    let _ = reply.send(machipc::Message::new(req.id + 1), None);
                }
            }
        });
        let mut got = 0usize;
        while got < 4 * 200 * 8 {
            got += rx
                .receive_many(32, Some(Duration::from_secs(30)))
                .expect("stormed messages arrive within the timeout")
                .len();
        }
        for i in 0..50u32 {
            let resp = srv_tx
                .rpc(
                    machipc::Message::new(i),
                    None,
                    Some(Duration::from_secs(30)),
                )
                .expect("rpc to a live server succeeds");
            assert_eq!(resp.id, i + 1);
        }
        srv_tx
            .send(machipc::Message::new(u32::MAX), None)
            .expect("shutdown message reaches the server");
    });
}
