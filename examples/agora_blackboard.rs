//! An Agora-style speech blackboard (Section 8.4).
//!
//! "The blackboard physically resides on a multiprocessor host. ... Agents
//! use shared memory to directly modify the blackboard. Message passing is
//! used between loosely coupled components of the system that collect
//! data, perform low level signal processing, and display results."
//!
//! A signal-collection agent on a remote workstation posts hypotheses by
//! message; evaluation agents on the multiprocessor score them through
//! shared memory; a display agent (remote again) reads results by message.
//!
//! ```text
//! cargo run --example agora_blackboard
//! ```

use machcore::{Kernel, KernelConfig};
use machnet::Fabric;
use machpagers::agora::{Blackboard, STATE_EVALUATED, STATE_POSTED};
use machsim::stats::keys;

fn main() {
    // The multiprocessor host (a VAX 8200-class machine in the paper) and
    // two workstations on the network.
    let fabric = Fabric::new();
    let multiprocessor = fabric.add_host("vax8200");
    let collector_ws = fabric.add_host("microvax-1");
    let display_ws = fabric.add_host("microvax-2");
    let kernel = Kernel::boot_on(multiprocessor.machine().clone(), KernelConfig::default());

    let blackboard = Blackboard::start(&kernel, 16);
    println!(
        "blackboard up: {} hypothesis slots on vax8200",
        blackboard.slots()
    );

    // Loosely coupled: the collector posts raw hypotheses BY MESSAGE.
    let collector = blackboard.remote_agent(&fabric, &multiprocessor, &collector_ws);
    for slot in 0..8u64 {
        collector
            .post(slot, format!("utterance-{slot}").as_bytes())
            .unwrap();
    }
    println!(
        "collector posted 8 hypotheses by message ({} network messages so far)",
        collector_ws.machine().stats.get(keys::NET_MESSAGES)
    );

    // Tightly coupled: four evaluator agents on the multiprocessor score
    // hypotheses through SHARED MEMORY, in parallel.
    let evaluators: Vec<_> = (0..4)
        .map(|i| {
            blackboard
                .local_agent(&kernel, &format!("eval{i}"))
                .unwrap()
        })
        .collect();
    std::thread::scope(|s| {
        for (i, agent) in evaluators.iter().enumerate() {
            s.spawn(move || {
                for slot in (i as u64..8).step_by(4) {
                    let h = agent.read(slot).unwrap();
                    assert_eq!(h.state, STATE_POSTED);
                    // "Score" = payload length times slot number.
                    let score = h.payload.iter().filter(|&&b| b != 0).count() as u64 * (slot + 1);
                    agent.evaluate(slot, score).unwrap();
                }
            });
        }
    });
    println!("4 evaluator agents scored all hypotheses via shared memory");

    // Loosely coupled again: the display agent reads results by message.
    let display = blackboard.remote_agent(&fabric, &multiprocessor, &display_ws);
    for slot in 0..8u64 {
        let h = display.read(slot).unwrap();
        assert_eq!(h.state, STATE_EVALUATED);
        let text = String::from_utf8_lossy(&h.payload);
        println!(
            "  slot {slot}: {:14} score {}",
            text.trim_end_matches('\0'),
            h.score
        );
    }
    println!(
        "display read results by message; total network messages: {}",
        collector_ws.machine().stats.get(keys::NET_MESSAGES)
            + display_ws.machine().stats.get(keys::NET_MESSAGES)
    );
}
