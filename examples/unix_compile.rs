//! The Section 9 comparison: compile a project under mapped-file UNIX
//! emulation (Mach) and under a traditional 10% buffer cache (the SunOS
//! 3.2 stand-in), then print the warm-build speedup and I/O-op ratio.
//!
//! ```text
//! cargo run --release --example unix_compile
//! ```

use machbench::compile;

fn main() {
    println!("synthetic compilation, 4 MB machine, warm and cold builds\n");
    let outcomes = compile::run_default();
    println!("{}", compile::table(&outcomes).render());
    for o in &outcomes {
        println!(
            "{:28}  warm speedup {:4.2}x (paper ~2x)   warm I/O ratio {:6.1}x   total I/O ratio {:5.1}x (paper ~10x)",
            o.label,
            o.warm_speedup(),
            o.warm_io_ratio(),
            o.total_io_ratio()
        );
    }
    println!("\nthe mechanism: Mach uses the bulk of physical memory as a file cache\n(file pages persist in the VM cache between opens), while the baseline\nsqueezes every byte through a fixed buffer pool plus kernel/user copies.");
}
