//! Quickstart: boot a kernel, write a data manager, map its memory object.
//!
//! This is the smallest complete tour of the paper's contribution: a page
//! fault in an ordinary task turns into a `pager_data_request` message to
//! a user-level server, which answers with `pager_data_provided`, and the
//! faulting thread resumes on the supplied page.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use machcore::{spawn_manager, DataManager, Kernel, KernelConfig, KernelConn, Task};
use machipc::OolBuffer;
use machvm::VmProt;

/// A data manager whose memory object contains a generated pattern:
/// byte `i` of the object is `i % 251`.
struct PatternPager;

impl DataManager for PatternPager {
    fn data_request(
        &mut self,
        kernel: &KernelConn,
        object: u64,
        offset: u64,
        length: u64,
        _access: VmProt,
    ) {
        println!("  [pager] pager_data_request: offset={offset} length={length}");
        let data: Vec<u8> = (offset..offset + length).map(|i| (i % 251) as u8).collect();
        kernel.data_provided(object, offset, OolBuffer::from_vec(data), VmProt::NONE);
    }

    fn data_write(&mut self, kernel: &KernelConn, object: u64, offset: u64, data: OolBuffer) {
        println!(
            "  [pager] pager_data_write: offset={offset} ({} bytes)",
            data.len()
        );
        kernel.release_laundry(object, data.len() as u64);
    }
}

fn main() {
    // Boot a Mach kernel: 4 MB of simulated memory, a default pager over a
    // paging partition, and the EMM service loop.
    let kernel = Kernel::boot(KernelConfig::default());
    println!("kernel booted: page size {} bytes", kernel.page_size());

    // Start the data manager (a user-level task with a port).
    let manager = spawn_manager(kernel.machine(), "pattern", PatternPager);

    // A client task maps the memory object: vm_allocate_with_pager.
    let task = Task::create(&kernel, "client");
    let addr = task
        .vm_allocate_with_pager(None, 16 * 4096, manager.port(), 0)
        .expect("map memory object");
    println!("mapped 16 pages of the pattern object at {addr:#x}");

    // Touch a few pages: each first touch is a fault -> pager round trip.
    for page in [0u64, 3, 9] {
        let mut buf = [0u8; 8];
        task.read_memory(addr + page * 4096, &mut buf)
            .expect("read mapped memory");
        println!("  page {page}: first bytes {buf:?}");
        assert_eq!(buf[0], ((page * 4096) % 251) as u8);
    }

    // Warm accesses hit the resident cache: no more pager traffic.
    let fills = kernel
        .machine()
        .stats
        .get(machsim::stats::keys::VM_PAGER_FILLS);
    let mut buf = [0u8; 8];
    task.read_memory(addr, &mut buf).unwrap();
    assert_eq!(
        kernel
            .machine()
            .stats
            .get(machsim::stats::keys::VM_PAGER_FILLS),
        fills,
        "warm access stayed in the cache"
    );
    println!("warm re-read hit the VM cache (no pager message)");

    // Writes land in the cache and flow back on unmap.
    task.write_memory(addr, b"hello, external pager!").unwrap();
    task.vm_deallocate(addr, 16 * 4096).unwrap();
    // Give the asynchronous write-back a moment, then report.
    machsim::wall::sleep(std::time::Duration::from_millis(100));
    let stats = task.vm_statistics();
    println!(
        "vm_statistics: faults={} pageins={} pageouts={} cache hits={}",
        stats.faults, stats.pageins, stats.pageouts, stats.cache_hits
    );
    println!("done.");
}
