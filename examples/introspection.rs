//! Introspection: query a kernel's statistics over IPC — from the same
//! host and from a *different* host across the net fabric — then render
//! the fetched snapshot as Prometheus text.
//!
//! The host port is an ordinary port: the same `host_statistics` message
//! works locally or through a netmsgserver proxy, which is the paper's
//! location transparency applied to the kernel's own state.
//!
//! ```text
//! cargo run --example introspection
//! ```

use machcore::introspect::{query_host_statistics, query_task_info, query_vm_statistics};
use machcore::{spawn_manager, DataManager, Kernel, KernelConfig, KernelConn, Task};
use machipc::OolBuffer;
use machnet::Fabric;
use machsim::stats::keys;
use machvm::VmProt;

/// A pager whose object reads back as 0xAB everywhere.
struct ConstPager;

impl DataManager for ConstPager {
    fn data_request(&mut self, k: &KernelConn, object: u64, offset: u64, length: u64, _a: VmProt) {
        k.data_provided(
            object,
            offset,
            OolBuffer::from_vec(vec![0xAB; length as usize]),
            VmProt::NONE,
        );
    }
}

fn main() {
    // Two hosts on one fabric; the kernel under observation runs on beta.
    let fabric = Fabric::new();
    let alpha = fabric.add_host("alpha");
    let beta = fabric.add_host("beta");
    let kernel = Kernel::boot_on(beta.machine().clone(), KernelConfig::default());

    // Some observable activity on beta: externally paged faults.
    let task = Task::create(&kernel, "worker");
    let mgr = spawn_manager(kernel.machine(), "const", ConstPager);
    let addr = task
        .vm_allocate_with_pager(None, 8 * 4096, mgr.port(), 0)
        .expect("map memory object");
    let mut b = [0u8; 1];
    for page in 0..8u64 {
        task.read_memory(addr + page * 4096, &mut b).unwrap();
    }

    // Local query: beta asks its own kernel.
    let local = query_host_statistics(kernel.host_port()).expect("local query");
    println!(
        "[beta, local] {} faults, {} in-flight chains at {} ns",
        local.counter(keys::VM_FAULTS),
        local.in_flight,
        local.now_ns
    );

    // Remote query: alpha holds only a proxy right for beta's host port;
    // the request, the reply port, and the reply all cross the fabric.
    let proxy = fabric.proxy_right(&alpha, &beta, kernel.host_port().clone());
    let remote = query_host_statistics(&proxy).expect("remote query");
    println!(
        "[alpha -> {}] {} faults fetched over the net ({} net messages on alpha)",
        remote.host,
        remote.counter(keys::VM_FAULTS),
        alpha.machine().stats.get(keys::NET_MESSAGES)
    );

    let vm = query_vm_statistics(&proxy).expect("remote vm query");
    println!(
        "[alpha -> {}] resident {} / total {} frames, {} v2p shards",
        vm.host,
        vm.census.resident,
        vm.census.total,
        vm.shards.len()
    );
    let info = query_task_info(&proxy).expect("remote task query");
    for t in &info.tasks {
        println!(
            "[alpha -> {}] task '{}': {} regions, {} bytes, {} resident pages",
            info.host, t.name, t.regions, t.virtual_bytes, t.resident_pages
        );
    }

    // The fetched snapshot renders on the querying side.
    println!("\nPrometheus exposition of the remote snapshot (excerpt):");
    for line in remote
        .to_prometheus()
        .lines()
        .filter(|l| l.starts_with("vm_faults") || l.starts_with("trace_dropped"))
    {
        println!("  {line}");
    }
    println!("done.");
}
