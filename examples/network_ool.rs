//! Large message data across the network: eager vs copy-on-reference.
//!
//! Section 7: "It is possible to implement copy-on-reference and
//! read/write sharing of information in a network environment without
//! explicit hardware support." A 1 MB message body is sent between two
//! hosts both ways; the receiver touches only a few pages.
//!
//! ```text
//! cargo run --example network_ool
//! ```

use machcore::Task;
use machipc::ReceiveRight;
use machpagers::remote_region;
use machsim::stats::keys;
use std::time::Duration;

const PAGE: u64 = 4096;
const PAGES: u64 = 256; // 1 MB.

fn main() {
    // Eager: every byte crosses the wire at send time.
    {
        let (fabric, (ha, ka), (hb, kb)) = remote_region::two_hosts();
        let sender = Task::create(&ka, "sender");
        let receiver = Task::create(&kb, "receiver");
        let addr = sender.vm_allocate(PAGES * PAGE).unwrap();
        sender.write_memory(addr, b"payload").unwrap();
        let (rx, tx) = ReceiveRight::allocate(hb.machine());
        let net0 = hb.machine().stats.get(keys::NET_BYTES);
        remote_region::send_eager(&fabric, &ha, &hb, &sender, addr, PAGES * PAGE, &tx).unwrap();
        let msg = rx.receive(Some(Duration::from_secs(5))).unwrap();
        let (raddr, _) = remote_region::copy_in_eager(&receiver, &msg).unwrap();
        let mut b = [0u8; 7];
        receiver.read_memory(raddr, &mut b).unwrap();
        assert_eq!(&b, b"payload");
        println!(
            "eager:             {:>8} bytes on the wire (receiver touched 1 page)",
            hb.machine().stats.get(keys::NET_BYTES) - net0
        );
    }

    // Copy-on-reference: a tiny handle crosses; pages follow on demand.
    {
        let (fabric, (ha, ka), (hb, kb)) = remote_region::two_hosts();
        let sender = Task::create(&ka, "sender");
        let receiver = Task::create(&kb, "receiver");
        let addr = sender.vm_allocate(PAGES * PAGE).unwrap();
        sender.write_memory(addr, b"payload").unwrap();
        let (rx, tx) = ReceiveRight::allocate(hb.machine());
        let net0 = hb.machine().stats.get(keys::NET_BYTES);
        let _pager = remote_region::send_copy_on_reference(
            &fabric,
            &ha,
            &hb,
            &sender,
            addr,
            PAGES * PAGE,
            &tx,
        )
        .unwrap();
        let msg = rx.receive(Some(Duration::from_secs(5))).unwrap();
        let at_send = hb.machine().stats.get(keys::NET_BYTES) - net0;
        let (raddr, _) = remote_region::map_received(&receiver, &msg).unwrap();
        let mut b = [0u8; 7];
        receiver.read_memory(raddr, &mut b).unwrap();
        assert_eq!(&b, b"payload");
        println!(
            "copy-on-reference: {:>8} bytes at send time, {:>8} after touching 1 page",
            at_send,
            hb.machine().stats.get(keys::NET_BYTES) - net0
        );
    }
    println!("\nthe duality, networked: what COW mapping does on one host,\ncopy-on-reference paging does across hosts — bytes move only when used.");
}
