//! A tour of Section 6: every memory failure mode and its defense.
//!
//! "The potential problems associated with external data managers are
//! strongly analogous to communication failure. ... Solutions to
//! communication failure problems are applicable to external data manager
//! failure."
//!
//! ```text
//! cargo run --example failure_modes
//! ```

use machbench::failure;

fn main() {
    println!("exercising every §6.1 failure mode against its §6.2 defense...\n");
    let rows = failure::run_default();
    println!("{}", failure::table(&rows).render());
    let all_ok = rows.iter().all(|r| r.ok);
    println!(
        "{}",
        if all_ok {
            "every defense held: the kernel survived all hostile data managers."
        } else {
            "A DEFENSE FAILED — see the table above."
        }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
