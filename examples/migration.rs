//! Copy-on-reference task migration (Section 8.2).
//!
//! Migrates a 1 MB task image between two hosts three ways — eager copy,
//! pure copy-on-reference, and copy-on-reference with pre-paging — and
//! prints the time-to-resume and network-byte costs of each.
//!
//! ```text
//! cargo run --example migration
//! ```

use machcore::{Kernel, KernelConfig, Task};
use machnet::Fabric;
use machpagers::{MigrationManager, MigrationStrategy};
use machsim::stats::keys;

const PAGE: u64 = 4096;
const PAGES: u64 = 256;

fn main() {
    let fabric = Fabric::new();
    let origin = fabric.add_host("origin");
    let destination = fabric.add_host("destination");
    let k_origin = Kernel::boot_on(origin.machine().clone(), KernelConfig::default());
    let k_dest = Kernel::boot_on(
        destination.machine().clone(),
        KernelConfig {
            memory_bytes: 16 << 20,
            ..KernelConfig::default()
        },
    );
    let manager = MigrationManager::new(&fabric);

    for (label, strategy) in [
        ("eager copy", MigrationStrategy::Eager),
        (
            "copy-on-reference",
            MigrationStrategy::CopyOnReference { prefetch_pages: 0 },
        ),
        (
            "copy-on-reference + prefetch 7",
            MigrationStrategy::CopyOnReference { prefetch_pages: 7 },
        ),
    ] {
        // A task with a 1 MB image where page i holds the byte i+1.
        let source = Task::create(&k_origin, "worker");
        let addr = source.vm_allocate(PAGES * PAGE).unwrap();
        for i in 0..PAGES {
            source
                .write_memory(addr + i * PAGE, &[(i % 250) as u8 + 1])
                .unwrap();
        }
        let net0 = destination.machine().stats.get(keys::NET_BYTES);
        let migrated = manager
            .migrate_region(
                &source,
                &origin,
                addr,
                PAGES * PAGE,
                &k_dest,
                &destination,
                strategy,
            )
            .expect("migrate");
        // The migrated task touches 10% of its image (a realistic restart).
        let mut b = [0u8; 1];
        for i in 0..PAGES / 10 {
            migrated
                .task
                .read_memory(migrated.report.address + i * PAGE, &mut b)
                .unwrap();
            assert_eq!(b[0], (i % 250) as u8 + 1);
        }
        let total = destination.machine().stats.get(keys::NET_BYTES) - net0;
        println!(
            "{label:32} resume: {:>10}ns sim   before-resume: {:>8}B   total: {:>8}B",
            migrated.report.resume_latency_ns, migrated.report.bytes_before_resume, total
        );
        source.resume();
    }
    println!("\ncopy-on-reference resumes orders of magnitude faster and moves\nonly the pages the task actually touches — Section 8.2's claim.");
}
