//! Camelot-style transactions over mapped recoverable memory (Section 8.3).
//!
//! A bank keeps account balances in a recoverable segment mapped straight
//! into its address space. Transfers are write-ahead logged and committed;
//! then the machine "crashes" with one transaction in flight, and recovery
//! restores a transaction-consistent state.
//!
//! ```text
//! cargo run --example camelot_bank
//! ```

use machcore::{Kernel, KernelConfig, Task};
use machpagers::camelot::{balance_of, encode_balance};
use machpagers::{CamelotClient, CamelotServer};
use machstorage::BlockDevice;
use std::sync::Arc;

fn main() {
    let kernel = Kernel::boot(KernelConfig::default());
    let device = Arc::new(BlockDevice::new(kernel.machine(), 512));
    let server = CamelotServer::format_and_start(kernel.machine(), device.clone(), 16 * 4096);
    let task = Task::create(&kernel, "bank");
    let client = CamelotClient::attach(&task, server.port()).expect("attach");
    println!("recoverable segment mapped ({} bytes)", client.size());

    // Fund account 0, then run committed transfers 0 -> 1.
    let tx = client.begin().unwrap();
    client.write(tx, 0, &encode_balance(500)).unwrap();
    client.commit(tx).unwrap();
    for i in 0..5u64 {
        let tx = client.begin().unwrap();
        client
            .write(tx, 0, &encode_balance(500 - 50 * (i + 1)))
            .unwrap();
        client.write(tx, 8, &encode_balance(50 * (i + 1))).unwrap();
        client.commit(tx).unwrap();
    }
    let mut buf = [0u8; 16];
    client.read(0, &mut buf).unwrap();
    println!(
        "after 5 committed transfers: account0={} account1={}",
        balance_of(&buf, 0),
        balance_of(&buf, 1)
    );

    // One transaction is interrupted by a crash before committing.
    let doomed = client.begin().unwrap();
    client.write(doomed, 0, &encode_balance(0)).unwrap();
    client.write(doomed, 16, &encode_balance(9999)).unwrap();
    println!("transaction {doomed} updated memory but will never commit...");

    // Crash: drop the client, the task, the server and the kernel. Only
    // the device survives. Dirty mapped pages are flushed on the way down,
    // and the disk manager forces the log before each page write.
    drop(client);
    drop(task);
    machsim::wall::sleep(std::time::Duration::from_millis(200));
    println!(
        "WAL forced before data pages: {} times",
        server.forced_before_data()
    );
    drop(server);
    drop(kernel);
    println!("-- crash --");

    // Recovery: redo committed transactions, undo the doomed one.
    let (redone, undone) = CamelotServer::recover(device.clone());
    let segment = CamelotServer::read_segment_raw(&device, 16 * 4096);
    println!("recovery: {redone} updates redone, {undone} undone");
    println!(
        "after recovery: account0={} account1={} account2={}",
        balance_of(&segment, 0),
        balance_of(&segment, 1),
        balance_of(&segment, 2)
    );
    assert_eq!(balance_of(&segment, 0), 250);
    assert_eq!(balance_of(&segment, 1), 250);
    assert_eq!(balance_of(&segment, 2), 0, "doomed transaction undone");
    println!("balances are transaction-consistent. done.");
}
