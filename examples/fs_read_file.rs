//! The Section 4.1 application, line for line.
//!
//! The paper's sample client reads a whole file into new virtual memory,
//! randomly increments bytes of its copy-on-write copy, writes half of it
//! back, and deallocates — while any other client consistently sees the
//! original contents. This example is that program.
//!
//! ```text
//! cargo run --example fs_read_file
//! ```

use machcore::{Kernel, KernelConfig, Task};
use machpagers::{FileServer, FsClient};
use machsim::SplitMix64;
use machstorage::{BlockDevice, FlatFs};
use std::sync::Arc;

fn main() {
    let kernel = Kernel::boot(KernelConfig::default());
    let device = Arc::new(BlockDevice::new(kernel.machine(), 256));
    let disk_fs = Arc::new(FlatFs::format(device, 0));
    let server = FileServer::start(kernel.machine(), disk_fs);
    let client = FsClient::new(server.port().clone());

    // Prepare "filename" with known contents.
    server.fs().create("filename").unwrap();
    server
        .fs()
        .write("filename", 0, &vec![100u8; 8192])
        .unwrap();

    let task = Task::create(&kernel, "app");

    // /* Read the file -- ignore errors */
    // fs_read_file("filename", &file_data, file_size);
    let (file_data, file_size) = client.read_file(&task, "filename").unwrap();
    println!("fs_read_file: {file_size} bytes of new virtual memory at {file_data:#x}");

    // /* Randomly change contents */
    // for (i = 0; i < file_size; i++)
    //     file_data[(int)(file_size*rand())]++;
    let mut rng = SplitMix64::new(1987);
    for _ in 0..file_size {
        let i = rng.next_below(file_size);
        let mut b = [0u8; 1];
        task.read_memory(file_data + i, &mut b).unwrap();
        task.write_memory(file_data + i, &[b[0].wrapping_add(1)])
            .unwrap();
    }
    println!("randomly incremented {file_size} bytes of the private copy");

    // A second application reads the same file concurrently and sees the
    // ORIGINAL contents — the copy-on-write consistency the paper sells.
    let other = Task::create(&kernel, "observer");
    let (other_data, _) = client.read_file(&other, "filename").unwrap();
    let mut sample = vec![0u8; 64];
    other.read_memory(other_data, &mut sample).unwrap();
    assert!(sample.iter().all(|&b| b == 100));
    println!("observer still sees the original file contents (all 100s)");

    // /* Write back some results -- ignore errors */
    // fs_write_file("filename", file_data, file_size/2);
    let half = task.vm_read(file_data, file_size / 2).unwrap();
    client.write_file("filename", &half).unwrap();
    println!(
        "fs_write_file: stored the first {} bytes back",
        file_size / 2
    );

    // /* Throw away working copy */
    // vm_deallocate(task_self(), file_data, file_size);
    task.vm_deallocate(file_data, file_size).unwrap();
    println!("vm_deallocate: working copy gone; pager resources released");

    let changed = server
        .fs()
        .read_all("filename")
        .unwrap()
        .iter()
        .take(file_size as usize / 2)
        .filter(|&&b| b != 100)
        .count();
    println!(
        "file now differs from the original in {changed} of the first {} bytes",
        file_size / 2
    );
}
