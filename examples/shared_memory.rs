//! The Section 4.2 walkthrough: consistent network shared memory.
//!
//! Two clients on *different hosts* (independent kernels on a simulated
//! NORMA network) share one memory region provided by a shared memory
//! server. The example replays the paper's three frames:
//!
//! 1. both clients map the region (one `pager_init` per kernel),
//! 2. both take read faults on the same page (served write-locked),
//! 3. one client writes — the kernel sends `pager_data_unlock`, the server
//!    invalidates the other reader with `pager_flush_request` and grants
//!    write access with `pager_data_lock`.
//!
//! ```text
//! cargo run --example shared_memory
//! ```

use machcore::{Kernel, KernelConfig, Task};
use machnet::Fabric;
use machpagers::SharedMemoryServer;
use machsim::stats::keys;
use std::time::Duration;

fn main() {
    let fabric = Fabric::new();
    let server_host = fabric.add_host("server");
    let host_a = fabric.add_host("alpha");
    let host_b = fabric.add_host("beta");
    let kernel_a = Kernel::boot_on(host_a.machine().clone(), KernelConfig::default());
    let kernel_b = Kernel::boot_on(host_b.machine().clone(), KernelConfig::default());
    let task_a = Task::create(&kernel_a, "client-a");
    let task_b = Task::create(&kernel_b, "client-b");

    // Frame 1: the server creates memory object X; each client maps it.
    let server = SharedMemoryServer::start(&fabric, &server_host, 4 * 4096);
    let addr_a = server.attach(&task_a, &host_a).expect("attach A");
    let addr_b = server.attach(&task_b, &host_b).expect("attach B");
    println!("frame 1: both kernels mapped object X (pager_init each)");

    // Frame 2: both clients read-fault the same page.
    let mut buf = [0u8; 4];
    task_a.read_memory(addr_a, &mut buf).unwrap();
    task_b.read_memory(addr_b, &mut buf).unwrap();
    let (inv, dem) = server.coherence_counters();
    println!(
        "frame 2: parallel read faults served write-locked (invalidations={inv}, demotions={dem})"
    );

    // Frame 3: client A writes one of the shared pages.
    task_a.write_memory(addr_a, b"A was here").unwrap();
    let (inv, _) = server.coherence_counters();
    println!(
        "frame 3: A's write triggered unlock negotiation; B invalidated ({inv} invalidations)"
    );

    // B rereads: the server demotes A and serves B the fresh data.
    let deadline = machsim::wall::Deadline::after(Duration::from_secs(5));
    let mut b = [0u8; 10];
    loop {
        task_b.read_memory(addr_b, &mut b).unwrap();
        if &b == b"A was here" {
            break;
        }
        assert!(!deadline.expired(), "coherence stalled");
        machsim::wall::sleep(Duration::from_millis(5));
    }
    println!("B reads: {:?}", std::str::from_utf8(&b).unwrap());

    let (inv, dem) = server.coherence_counters();
    println!(
        "coherence totals: invalidations={inv} demotions={dem}; \
         network messages A={} B={}",
        host_a.machine().stats.get(keys::NET_MESSAGES),
        host_b.machine().stats.get(keys::NET_MESSAGES),
    );
    println!("done.");
}
